// Snapshot persistence for the two-level hierarchical structure.
//
// Format (native-endian, CRC-32 trailer):
//   magic "RPSHIER1" | u32 value_size | i32 dims |
//   i64 extents[dims] | i64 box_size[dims] |
//   i64 rp_count, raw RP cells |
//   flat-section for the coarse structure |
//   flat-section for each face mask 1 .. 2^d - 2 | u32 crc32
// where a flat-section is:
//   i64 inner_box[dims] | i64 rp_count, raw cells |
//   i64 overlay_count, raw values
// (the inner structures' shapes are implied by the outer geometry).

#ifndef RPS_CORE_HIERARCHICAL_SNAPSHOT_H_
#define RPS_CORE_HIERARCHICAL_SNAPSHOT_H_

#include <cstring>
#include <string>
#include <vector>

#include "core/hierarchical_rps.h"
#include "util/binary_io.h"

namespace rps {

inline constexpr char kHierSnapshotMagic[8] = {'R', 'P', 'S', 'H',
                                               'I', 'E', 'R', '1'};

namespace internal_hier_snapshot {

template <typename T>
Status WriteFlatSection(BinaryWriter& writer,
                        const RelativePrefixSum<T>& rps) {
  const CellIndex& box = rps.geometry().box_size();
  for (int j = 0; j < box.dims(); ++j) {
    RPS_RETURN_IF_ERROR(writer.WriteScalar<int64_t>(box[j]));
  }
  std::vector<T> rp_cells(static_cast<size_t>(rps.rp_array().num_cells()));
  std::memcpy(rp_cells.data(), rps.rp_array().data(),
              rp_cells.size() * sizeof(T));
  RPS_RETURN_IF_ERROR(writer.WriteVector(rp_cells));
  std::vector<T> overlay_values(
      static_cast<size_t>(rps.overlay().num_values()));
  for (int64_t slot = 0; slot < rps.overlay().num_values(); ++slot) {
    overlay_values[static_cast<size_t>(slot)] = rps.overlay().at_slot(slot);
  }
  return writer.WriteVector(overlay_values);
}

template <typename T>
Result<RelativePrefixSum<T>> ReadFlatSection(BinaryReader& reader,
                                             const Shape& shape) {
  CellIndex box = CellIndex::Filled(shape.dims(), 1);
  for (int j = 0; j < shape.dims(); ++j) {
    RPS_ASSIGN_OR_RETURN(const int64_t k, reader.ReadScalar<int64_t>());
    if (k < 1 || k > shape.extent(j)) {
      return Status::IoError("corrupt inner box size");
    }
    box[j] = k;
  }
  RPS_ASSIGN_OR_RETURN(std::vector<T> rp_cells,
                       reader.ReadVector<T>(shape.num_cells()));
  const OverlayGeometry geometry(shape, box);
  RPS_ASSIGN_OR_RETURN(std::vector<T> overlay_values,
                       reader.ReadVector<T>(geometry.total_stored_cells()));
  return RelativePrefixSum<T>::FromParts(shape, box, std::move(rp_cells),
                                         std::move(overlay_values));
}

}  // namespace internal_hier_snapshot

template <typename T>
Status SaveHierarchicalSnapshot(const HierarchicalRps<T>& hier,
                                const std::string& path) {
  static_assert(std::is_trivially_copyable_v<T>);
  RPS_ASSIGN_OR_RETURN(BinaryWriter writer, BinaryWriter::Create(path));
  RPS_RETURN_IF_ERROR(writer.WriteBytes(kHierSnapshotMagic, 8));
  RPS_RETURN_IF_ERROR(
      writer.WriteScalar<uint32_t>(static_cast<uint32_t>(sizeof(T))));
  const Shape& shape = hier.shape();
  RPS_RETURN_IF_ERROR(writer.WriteScalar<int32_t>(shape.dims()));
  for (int j = 0; j < shape.dims(); ++j) {
    RPS_RETURN_IF_ERROR(writer.WriteScalar<int64_t>(shape.extent(j)));
  }
  for (int j = 0; j < shape.dims(); ++j) {
    RPS_RETURN_IF_ERROR(writer.WriteScalar<int64_t>(hier.box_size()[j]));
  }
  std::vector<T> rp_cells(static_cast<size_t>(hier.rp_array().num_cells()));
  std::memcpy(rp_cells.data(), hier.rp_array().data(),
              rp_cells.size() * sizeof(T));
  RPS_RETURN_IF_ERROR(writer.WriteVector(rp_cells));
  RPS_RETURN_IF_ERROR(
      internal_hier_snapshot::WriteFlatSection(writer, hier.coarse()));
  const uint32_t full = (1u << shape.dims()) - 1;
  for (uint32_t mask = 1; mask < full; ++mask) {
    RPS_RETURN_IF_ERROR(
        internal_hier_snapshot::WriteFlatSection(writer, hier.face(mask)));
  }
  return writer.FinishWithChecksum();
}

template <typename T>
Result<HierarchicalRps<T>> LoadHierarchicalSnapshot(const std::string& path) {
  static_assert(std::is_trivially_copyable_v<T>);
  RPS_ASSIGN_OR_RETURN(BinaryReader reader, BinaryReader::Open(path));
  char magic[8];
  RPS_RETURN_IF_ERROR(reader.ReadBytes(magic, 8));
  if (std::memcmp(magic, kHierSnapshotMagic, 8) != 0) {
    return Status::IoError("not a hierarchical snapshot: " + path);
  }
  RPS_ASSIGN_OR_RETURN(const uint32_t value_size,
                       reader.ReadScalar<uint32_t>());
  if (value_size != sizeof(T)) {
    return Status::IoError("snapshot value size mismatch");
  }
  RPS_ASSIGN_OR_RETURN(const int32_t dims, reader.ReadScalar<int32_t>());
  if (dims < 1 || dims > kMaxDims) {
    return Status::IoError("corrupt snapshot dimensionality");
  }
  std::vector<int64_t> extents(static_cast<size_t>(dims));
  for (auto& extent : extents) {
    RPS_ASSIGN_OR_RETURN(extent, reader.ReadScalar<int64_t>());
    if (extent < 1) return Status::IoError("corrupt snapshot extent");
  }
  const Shape shape = Shape::FromExtents(extents);
  CellIndex box_size = CellIndex::Filled(dims, 1);
  for (int j = 0; j < dims; ++j) {
    RPS_ASSIGN_OR_RETURN(const int64_t k, reader.ReadScalar<int64_t>());
    if (k < 1 || k > shape.extent(j)) {
      return Status::IoError("corrupt snapshot box size");
    }
    box_size[j] = k;
  }
  RPS_ASSIGN_OR_RETURN(std::vector<T> rp_cells,
                       reader.ReadVector<T>(shape.num_cells()));
  if (static_cast<int64_t>(rp_cells.size()) != shape.num_cells()) {
    return Status::IoError("snapshot RP cell count mismatch");
  }
  NdArray<T> rp(shape);
  std::memcpy(rp.data(), rp_cells.data(), rp_cells.size() * sizeof(T));

  // Shapes of the inner structures follow from the outer geometry; a
  // scratch HierarchicalRps is not needed to compute them.
  std::vector<int64_t> grid_extents;
  for (int j = 0; j < dims; ++j) {
    grid_extents.push_back(CeilDiv(shape.extent(j), box_size[j]));
  }
  const Shape grid_shape = Shape::FromExtents(grid_extents);
  RPS_ASSIGN_OR_RETURN(
      RelativePrefixSum<T> coarse,
      internal_hier_snapshot::ReadFlatSection<T>(reader, grid_shape));

  const uint32_t full = (1u << dims) - 1;
  std::vector<std::unique_ptr<RelativePrefixSum<T>>> faces(
      static_cast<size_t>(full));
  for (uint32_t mask = 1; mask < full; ++mask) {
    std::vector<int64_t> face_extents;
    for (int j = 0; j < dims; ++j) {
      face_extents.push_back((mask & (1u << j)) ? shape.extent(j)
                                                : grid_shape.extent(j));
    }
    RPS_ASSIGN_OR_RETURN(RelativePrefixSum<T> face,
                         internal_hier_snapshot::ReadFlatSection<T>(
                             reader, Shape::FromExtents(face_extents)));
    faces[static_cast<size_t>(mask)] =
        std::make_unique<RelativePrefixSum<T>>(std::move(face));
  }
  RPS_RETURN_IF_ERROR(reader.VerifyChecksum());
  return HierarchicalRps<T>::FromParts(shape, box_size, std::move(rp),
                                       std::move(coarse), std::move(faces));
}

}  // namespace rps

#endif  // RPS_CORE_HIERARCHICAL_SNAPSHOT_H_
