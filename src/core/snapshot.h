// Snapshot persistence for RelativePrefixSum structures.
//
// Saving stores the RP array and overlay values directly (no rebuild
// on load), with a CRC-32 trailer. Format (native-endian; snapshots
// are machine-local artifacts):
//   magic "RPSSNAP1" | u32 value_size | i32 dims |
//   i64 extents[dims] | i64 box_size[dims] |
//   i64 rp_count,  raw rp cells |
//   i64 ov_count,  raw overlay values | u32 crc32

#ifndef RPS_CORE_SNAPSHOT_H_
#define RPS_CORE_SNAPSHOT_H_

#include <cstring>
#include <string>
#include <vector>

#include "core/relative_prefix_sum.h"
#include "util/binary_io.h"

namespace rps {

inline constexpr char kSnapshotMagic[8] = {'R', 'P', 'S', 'S',
                                           'N', 'A', 'P', '1'};

/// How SaveSnapshot hits the disk.
struct SnapshotWriteOptions {
  /// fsync before close so the snapshot survives a crash after return.
  bool durable = false;
  /// fault_env failpoint site for injected I/O failures.
  std::string site = "snapshot";
};

/// Writes `rps` to `path`. T must be trivially copyable.
template <typename T>
Status SaveSnapshot(const RelativePrefixSum<T>& rps, const std::string& path,
                    const SnapshotWriteOptions& options = {}) {
  static_assert(std::is_trivially_copyable_v<T>);
  RPS_ASSIGN_OR_RETURN(BinaryWriter writer,
                       BinaryWriter::Create(path, options.site));
  RPS_RETURN_IF_ERROR(writer.WriteBytes(kSnapshotMagic, 8));
  RPS_RETURN_IF_ERROR(
      writer.WriteScalar<uint32_t>(static_cast<uint32_t>(sizeof(T))));
  const Shape& shape = rps.shape();
  const CellIndex& box_size = rps.geometry().box_size();
  RPS_RETURN_IF_ERROR(writer.WriteScalar<int32_t>(shape.dims()));
  for (int j = 0; j < shape.dims(); ++j) {
    RPS_RETURN_IF_ERROR(writer.WriteScalar<int64_t>(shape.extent(j)));
  }
  for (int j = 0; j < shape.dims(); ++j) {
    RPS_RETURN_IF_ERROR(writer.WriteScalar<int64_t>(box_size[j]));
  }
  // RP cells in linear order.
  std::vector<T> rp_cells(static_cast<size_t>(rps.rp_array().num_cells()));
  std::memcpy(rp_cells.data(), rps.rp_array().data(),
              rp_cells.size() * sizeof(T));
  RPS_RETURN_IF_ERROR(writer.WriteVector(rp_cells));
  // Overlay values in slot order.
  std::vector<T> overlay_values(
      static_cast<size_t>(rps.overlay().num_values()));
  for (int64_t slot = 0; slot < rps.overlay().num_values(); ++slot) {
    overlay_values[static_cast<size_t>(slot)] = rps.overlay().at_slot(slot);
  }
  RPS_RETURN_IF_ERROR(writer.WriteVector(overlay_values));
  return writer.FinishWithChecksum(options.durable);
}

/// Reads a structure previously written by SaveSnapshot.
template <typename T>
Result<RelativePrefixSum<T>> LoadSnapshot(const std::string& path,
                                          const std::string& site =
                                              "snapshot") {
  static_assert(std::is_trivially_copyable_v<T>);
  RPS_ASSIGN_OR_RETURN(BinaryReader reader, BinaryReader::Open(path, site));
  char magic[8];
  RPS_RETURN_IF_ERROR(reader.ReadBytes(magic, 8));
  if (std::memcmp(magic, kSnapshotMagic, 8) != 0) {
    return Status::IoError("not an RPS snapshot: " + path);
  }
  RPS_ASSIGN_OR_RETURN(const uint32_t value_size,
                       reader.ReadScalar<uint32_t>());
  if (value_size != sizeof(T)) {
    return Status::IoError("snapshot value size " +
                           std::to_string(value_size) + " != expected " +
                           std::to_string(sizeof(T)));
  }
  RPS_ASSIGN_OR_RETURN(const int32_t dims, reader.ReadScalar<int32_t>());
  if (dims < 1 || dims > kMaxDims) {
    return Status::IoError("corrupt snapshot dimensionality");
  }
  std::vector<int64_t> extents(static_cast<size_t>(dims));
  for (auto& extent : extents) {
    RPS_ASSIGN_OR_RETURN(extent, reader.ReadScalar<int64_t>());
    if (extent < 1) return Status::IoError("corrupt snapshot extent");
  }
  const Shape shape = Shape::FromExtents(extents);
  CellIndex box_size = CellIndex::Filled(dims, 1);
  for (int j = 0; j < dims; ++j) {
    RPS_ASSIGN_OR_RETURN(const int64_t k, reader.ReadScalar<int64_t>());
    if (k < 1 || k > shape.extent(j)) {
      return Status::IoError("corrupt snapshot box size");
    }
    box_size[j] = k;
  }
  RPS_ASSIGN_OR_RETURN(std::vector<T> rp_cells,
                       reader.ReadVector<T>(shape.num_cells()));
  if (static_cast<int64_t>(rp_cells.size()) != shape.num_cells()) {
    return Status::IoError("snapshot RP cell count mismatch");
  }
  const OverlayGeometry geometry(shape, box_size);
  RPS_ASSIGN_OR_RETURN(
      std::vector<T> overlay_values,
      reader.ReadVector<T>(geometry.total_stored_cells()));
  if (static_cast<int64_t>(overlay_values.size()) !=
      geometry.total_stored_cells()) {
    return Status::IoError("snapshot overlay value count mismatch");
  }
  RPS_RETURN_IF_ERROR(reader.VerifyChecksum());
  return RelativePrefixSum<T>::FromParts(shape, box_size,
                                         std::move(rp_cells),
                                         std::move(overlay_values));
}

}  // namespace rps

#endif  // RPS_CORE_SNAPSHOT_H_
