#include "obs/event_log.h"

#include <bit>
#include <chrono>
#include <cstring>

#include "obs/metrics.h"

namespace rps::obs {
namespace {

/// Drainer idle nap. Long enough that an idle log costs nothing
/// measurable, short enough that `tail -f` on the sink feels live.
constexpr std::chrono::milliseconds kDrainIdleSleep{1};

void AppendField(std::string& out, const char* key, int64_t value) {
  out += ",\"";
  out += key;
  out += "\":";
  out += std::to_string(value);
}

}  // namespace

uint64_t NextTraceId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

const char* WideEventKindName(WideEventKind kind) {
  switch (kind) {
    case WideEventKind::kQuery:
      return "query";
    case WideEventKind::kUpdate:
      return "update";
    case WideEventKind::kCheckpoint:
      return "checkpoint";
  }
  return "?";
}

void WideEvent::set_method(std::string_view name) {
  const size_t n = name.size() < kMethodCapacity - 1 ? name.size()
                                                     : kMethodCapacity - 1;
  std::memcpy(method, name.data(), n);
  method[n] = '\0';
}

std::string RenderWideEventJson(const WideEvent& event) {
  std::string out;
  out.reserve(256);
  out += "{\"kind\":\"";
  out += WideEventKindName(event.kind);
  out += "\",\"op\":\"";
  out += event.op;
  out += "\",\"method\":\"";
  out += event.method;
  out += "\",\"trace_id\":";
  out += std::to_string(event.trace_id);
  AppendField(out, "start_nanos", event.start_nanos);
  AppendField(out, "duration_nanos", event.duration_nanos);
  AppendField(out, "box_volume", event.box_volume);
  AppendField(out, "primary_cells", event.primary_cells);
  AppendField(out, "aux_cells", event.aux_cells);
  AppendField(out, "pool_hits", event.pool_hits);
  AppendField(out, "pool_misses", event.pool_misses);
  AppendField(out, "wal_bytes", event.wal_bytes);
  out += ",\"ok\":";
  out += event.ok ? "true" : "false";
  out += '}';
  return out;
}

EventRing::EventRing(int64_t capacity)
    : mask_(std::bit_ceil(static_cast<uint64_t>(capacity < 2 ? 2 : capacity)) -
            1),
      slots_(new Slot[mask_ + 1]) {
  for (uint64_t i = 0; i <= mask_; ++i) {
    slots_[i].sequence.store(i, std::memory_order_relaxed);
  }
}

bool EventRing::TryPush(const WideEvent& event) {
  uint64_t pos = head_.load(std::memory_order_relaxed);
  for (;;) {
    Slot& slot = slots_[pos & mask_];
    const uint64_t sequence = slot.sequence.load(std::memory_order_acquire);
    const int64_t diff =
        static_cast<int64_t>(sequence) - static_cast<int64_t>(pos);
    if (diff == 0) {
      // Slot is free for this position; claim it against other
      // producers.
      if (head_.compare_exchange_weak(pos, pos + 1,
                                      std::memory_order_relaxed)) {
        slot.event = event;
        slot.sequence.store(pos + 1, std::memory_order_release);
        return true;
      }
      // CAS refreshed `pos`; retry with the new position.
    } else if (diff < 0) {
      return false;  // the consumer has not freed this slot: full
    } else {
      pos = head_.load(std::memory_order_relaxed);
    }
  }
}

bool EventRing::TryPop(WideEvent* out) {
  const uint64_t pos = tail_.load(std::memory_order_relaxed);
  Slot& slot = slots_[pos & mask_];
  const uint64_t sequence = slot.sequence.load(std::memory_order_acquire);
  const int64_t diff =
      static_cast<int64_t>(sequence) - static_cast<int64_t>(pos + 1);
  if (diff < 0) return false;  // producer has not published: empty
  *out = slot.event;
  // Free the slot for the producer one lap ahead. Single consumer, so
  // a plain advance of tail_ suffices.
  slot.sequence.store(pos + mask_ + 1, std::memory_order_release);
  tail_.store(pos + 1, std::memory_order_relaxed);
  return true;
}

EventLog::EventLog(int64_t ring_capacity) : ring_(ring_capacity) {
  MetricRegistry& registry = MetricRegistry::Global();
  emitted_total_ = &registry.GetCounter("rps_event_log_emitted_total");
  dropped_total_ = &registry.GetCounter("rps_event_log_dropped_total");
  written_total_ = &registry.GetCounter("rps_event_log_written_total");
  bytes_total_ = &registry.GetCounter("rps_event_log_bytes_total");
}

EventLog::~EventLog() { Close(); }

EventLog& EventLog::Global() {
  static EventLog* const log = new EventLog();
  return *log;
}

Status EventLog::Open(const std::string& path) {
  MutexLock lock(&mutex_);
  if (file_ != nullptr) {
    return Status::FailedPrecondition("event log already open");
  }
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return Status::IoError("cannot open event log " + path);
  }
  file_ = file;
  stop_.store(false, std::memory_order_relaxed);
  drainer_ = std::thread([this, file] { DrainLoop(file); });
  active_.store(true, std::memory_order_relaxed);
  return Status::Ok();
}

void EventLog::Close() {
  MutexLock lock(&mutex_);
  if (file_ == nullptr) return;
  active_.store(false, std::memory_order_relaxed);
  stop_.store(true, std::memory_order_relaxed);
  if (drainer_.joinable()) drainer_.join();
  std::fclose(file_);
  file_ = nullptr;
}

void EventLog::Emit(const WideEvent& event) {
  if (!active()) return;
  if (ring_.TryPush(event)) {
    emitted_.fetch_add(1, std::memory_order_relaxed);
    emitted_total_->Increment();
  } else {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    dropped_total_->Increment();
  }
}

void EventLog::DrainLoop(std::FILE* file) {
  WideEvent event;
  std::string line;
  bool dirty = false;
  // Drain until stopped, then once more: events emitted before Close
  // flipped `stop_` are still in the ring and must reach the file.
  for (bool last_pass = false;;) {
    bool wrote = false;
    while (ring_.TryPop(&event)) {
      line = RenderWideEventJson(event);
      line += '\n';
      if (std::fwrite(line.data(), 1, line.size(), file) == line.size()) {
        written_.fetch_add(1, std::memory_order_relaxed);
        written_total_->Increment();
        bytes_total_->Increment(static_cast<int64_t>(line.size()));
      }
      wrote = true;
      dirty = true;
    }
    if (dirty && !wrote) {
      std::fflush(file);  // flush on the idle edge, not per record
      dirty = false;
    }
    if (last_pass) break;
    if (stop_.load(std::memory_order_relaxed)) {
      last_pass = true;
      continue;
    }
    if (!wrote) std::this_thread::sleep_for(kDrainIdleSleep);
  }
  std::fflush(file);
}

SlowQueryLog::SlowQueryLog(int64_t capacity)
    : capacity_(capacity < 1 ? 1 : capacity),
      slow_queries_total_(
          &MetricRegistry::Global().GetCounter("rps_slow_queries_total")) {}

SlowQueryLog& SlowQueryLog::Global() {
  static SlowQueryLog* const log = new SlowQueryLog();
  return *log;
}

void SlowQueryLog::Record(SlowQueryRecord record) {
  slow_queries_total_->Increment();
  MutexLock lock(&mutex_);
  records_.push_back(std::move(record));
  if (static_cast<int64_t>(records_.size()) > capacity_) {
    records_.pop_front();
  }
  ++total_;
}

std::vector<SlowQueryRecord> SlowQueryLog::Snapshot() const {
  MutexLock lock(&mutex_);
  return {records_.begin(), records_.end()};
}

std::string SlowQueryLog::RenderJson() const {
  const std::vector<SlowQueryRecord> records = Snapshot();
  std::string out = "[";
  for (size_t i = 0; i < records.size(); ++i) {
    const SlowQueryRecord& record = records[i];
    if (i > 0) out += ',';
    out += "{\"trace_id\":";
    out += std::to_string(record.trace_id);
    out += ",\"op\":\"";
    out += record.op;
    out += "\",\"method\":\"";
    out += record.method;
    out += '"';
    AppendField(out, "start_nanos", record.start_nanos);
    AppendField(out, "duration_nanos", record.duration_nanos);
    AppendField(out, "threshold_nanos", record.threshold_nanos);
    AppendField(out, "box_volume", record.box_volume);
    out += ",\"spans\":[";
    for (size_t s = 0; s < record.spans.size(); ++s) {
      const CollectedSpan& span = record.spans[s];
      if (s > 0) out += ',';
      out += "{\"op\":\"";
      out += span.op;
      out += "\",\"parent\":";
      out += std::to_string(span.parent);
      AppendField(out, "start_nanos", span.start_nanos);
      AppendField(out, "duration_nanos", span.duration_nanos);
      AppendField(out, "primary_cells", span.primary_cells);
      AppendField(out, "aux_cells", span.aux_cells);
      out += '}';
    }
    out += "]}";
  }
  out += ']';
  return out;
}

int64_t SlowQueryLog::total_recorded() const {
  MutexLock lock(&mutex_);
  return total_;
}

void SlowQueryLog::Clear() {
  MutexLock lock(&mutex_);
  records_.clear();
  total_ = 0;
}

RequestScope::RequestScope(WideEventKind kind, const char* op,
                           std::string_view method) {
  if (!Enabled()) return;
  emit_ = EventLog::Global().active();
  collect_ = SlowQueryLog::Global().threshold_nanos() > 0;
  if (!emit_ && !collect_) return;
  event_.kind = kind;
  event_.op = op;
  event_.set_method(method);
  event_.trace_id = NextTraceId();
  event_.start_nanos = TraceNowNanos();
  if (collect_) collector_.emplace();
}

RequestScope::~RequestScope() {
  if (!emit_ && !collect_) return;
  event_.duration_nanos = watch_.ElapsedNanos();
  if (collect_) {
    const int64_t threshold = SlowQueryLog::Global().threshold_nanos();
    if (threshold > 0 && event_.duration_nanos >= threshold) {
      SlowQueryRecord record;
      record.trace_id = event_.trace_id;
      record.op = event_.op;
      record.method = event_.method;
      record.start_nanos = event_.start_nanos;
      record.duration_nanos = event_.duration_nanos;
      record.threshold_nanos = threshold;
      record.box_volume = event_.box_volume;
      record.spans = collector_->TakeSpans();
      SlowQueryLog::Global().Record(std::move(record));
    }
  }
  if (emit_) EventLog::Global().Emit(event_);
}

}  // namespace rps::obs
