#include "obs/expo_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/event_log.h"
#include "obs/gate.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/stopwatch.h"

namespace rps::obs {
namespace {

/// Well-known paths get their own request-counter label; everything
/// else shares "other" so label cardinality stays bounded.
const char* PathLabel(const std::string& path) {
  if (path == "/metrics") return "/metrics";
  if (path == "/metrics.json") return "/metrics.json";
  if (path == "/healthz") return "/healthz";
  if (path == "/varz") return "/varz";
  if (path == "/debug/slow") return "/debug/slow";
  if (path == "/") return "/";
  return "other";
}

std::string StatusLine(int status) {
  switch (status) {
    case 200:
      return "HTTP/1.1 200 OK\r\n";
    case 404:
      return "HTTP/1.1 404 Not Found\r\n";
    default:
      return "HTTP/1.1 400 Bad Request\r\n";
  }
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

void AppendKeyedJson(std::string& out,
                     const std::vector<std::pair<std::string, JsonSource>>&
                         sources) {
  out += '{';
  for (size_t i = 0; i < sources.size(); ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += sources[i].first;
    out += "\":";
    const std::string value = sources[i].second();
    out += value.empty() ? "null" : value;
  }
  out += '}';
}

}  // namespace

ExpoServer::ExpoServer() : ExpoServer(Options()) {}

ExpoServer::ExpoServer(Options options) : options_(std::move(options)) {}

ExpoServer::~ExpoServer() { Stop(); }

Status ExpoServer::Start() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port =
      htons(static_cast<uint16_t>(options_.port < 0 ? 0 : options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind address (numeric IPv4 only): " +
                                   options_.bind_address);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IoError("bind(" + options_.bind_address + ":" +
                           std::to_string(options_.port) + ") failed");
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return Status::IoError("listen() failed");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    ::close(fd);
    return Status::IoError("getsockname() failed");
  }

  MutexLock lock(&mutex_);
  if (listen_fd_ >= 0) {
    ::close(fd);
    return Status::FailedPrecondition("expo server already running");
  }
  listen_fd_ = fd;
  port_ = static_cast<int>(ntohs(bound.sin_port));
  start_nanos_ = TraceNowNanos();
  serve_thread_ = std::thread([this, fd] { ServeLoop(fd); });
  return Status::Ok();
}

void ExpoServer::Stop() {
  std::thread thread;
  int fd = -1;
  {
    MutexLock lock(&mutex_);
    if (listen_fd_ < 0) return;
    fd = listen_fd_;
    listen_fd_ = -1;
    thread = std::move(serve_thread_);
  }
  // Wake the blocked accept(), then reap the thread. Joining must
  // happen outside the mutex: the serve thread takes it per request.
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
  if (thread.joinable()) thread.join();
}

int ExpoServer::port() const {
  MutexLock lock(&mutex_);
  return port_;
}

void ExpoServer::AddHealthSource(const std::string& name, JsonSource source) {
  MutexLock lock(&mutex_);
  health_sources_.emplace_back(name, std::move(source));
}

void ExpoServer::AddVarzSource(const std::string& name, JsonSource source) {
  MutexLock lock(&mutex_);
  varz_sources_.emplace_back(name, std::move(source));
}

void ExpoServer::ServeLoop(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket closed by Stop (or fatal error)
    }
    HandleConnection(fd);
    ::close(fd);
  }
}

void ExpoServer::HandleConnection(int fd) const {
  // One small request per connection; 8 KiB covers any scraper's GET.
  char buffer[8192];
  size_t used = 0;
  while (used < sizeof(buffer)) {
    const ssize_t n = ::recv(fd, buffer + used, sizeof(buffer) - used, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    used += static_cast<size_t>(n);
    if (std::string_view(buffer, used).find("\r\n\r\n") !=
        std::string_view::npos) {
      break;
    }
  }
  const std::string_view request(buffer, used);
  const size_t line_end = request.find("\r\n");
  const std::string_view line =
      line_end == std::string_view::npos ? request : request.substr(0, line_end);

  Response response;
  const size_t method_end = line.find(' ');
  const size_t path_end =
      method_end == std::string_view::npos
          ? std::string_view::npos
          : line.find(' ', method_end + 1);
  const std::string_view method =
      method_end == std::string_view::npos ? "" : line.substr(0, method_end);
  if (method != "GET" && method != "HEAD") {
    response.status = 400;
    response.body = "only GET is supported\n";
  } else {
    std::string_view target = path_end == std::string_view::npos
                                  ? line.substr(method_end + 1)
                                  : line.substr(method_end + 1,
                                                path_end - method_end - 1);
    target = target.substr(0, target.find('?'));
    response = Handle(std::string(target));
  }

  std::string out = StatusLine(response.status);
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  if (method != "HEAD") out += response.body;
  (void)SendAll(fd, out);
}

ExpoServer::Response ExpoServer::Handle(const std::string& path) const {
  static Counter* const requests_other =
      &MetricRegistry::Global().GetCounter("rps_expo_requests_total",
                                           {{"path", "other"}});
  const Stopwatch watch;
  Response response;
  if (path == "/metrics") {
    response.body = MetricRegistry::Global().RenderText();
  } else if (path == "/metrics.json") {
    response.content_type = "application/json";
    response.body = MetricRegistry::Global().RenderJson();
  } else if (path == "/healthz") {
    response.content_type = "application/json";
    response.body = RenderHealthz();
  } else if (path == "/varz") {
    response.content_type = "application/json";
    response.body = RenderVarz();
  } else if (path == "/debug/slow") {
    response.content_type = "application/json";
    response.body = SlowQueryLog::Global().RenderJson();
  } else if (path == "/") {
    response.body =
        "rps exposition server\n"
        "  /metrics       Prometheus text\n"
        "  /metrics.json  JSON exposition\n"
        "  /healthz       health sources\n"
        "  /varz          process vitals\n"
        "  /debug/slow    recent slow queries (span trees)\n";
  } else {
    response.status = 404;
    response.body = "not found: " + path + "\n";
  }

  MetricRegistry& registry = MetricRegistry::Global();
  const char* label = PathLabel(path);
  Counter& requests =
      std::strcmp(label, "other") == 0
          ? *requests_other
          : registry.GetCounter("rps_expo_requests_total", {{"path", label}});
  requests.Increment();
  registry.GetHistogram("rps_expo_request_seconds")
      .ObserveNanos(watch.ElapsedNanos());
  return response;
}

std::string ExpoServer::RenderHealthz() const {
  MutexLock lock(&mutex_);
  std::string out = "{\"status\":\"ok\",\"uptime_seconds\":";
  const double uptime =
      static_cast<double>(TraceNowNanos() - start_nanos_) * 1e-9;
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", uptime);
  out += buffer;
  out += ",\"sources\":";
  AppendKeyedJson(out, health_sources_);
  out += '}';
  return out;
}

std::string ExpoServer::RenderVarz() const {
  EventLog& events = EventLog::Global();
  TraceBuffer& trace = TraceBuffer::Global();
  SlowQueryLog& slow = SlowQueryLog::Global();
  std::string out = "{\"pid\":";
  out += std::to_string(::getpid());
  out += ",\"obs_enabled\":";
  out += Enabled() ? "true" : "false";
  out += ",\"num_metrics\":";
  out += std::to_string(MetricRegistry::Global().num_metrics());
  out += ",\"trace\":{\"recorded\":";
  out += std::to_string(trace.total_recorded());
  out += ",\"dropped\":";
  out += std::to_string(trace.dropped());
  out += "},\"event_log\":{\"active\":";
  out += events.active() ? "true" : "false";
  out += ",\"emitted\":";
  out += std::to_string(events.emitted());
  out += ",\"dropped\":";
  out += std::to_string(events.dropped());
  out += ",\"written\":";
  out += std::to_string(events.written());
  out += "},\"slow_query\":{\"threshold_nanos\":";
  out += std::to_string(slow.threshold_nanos());
  out += ",\"recorded\":";
  out += std::to_string(slow.total_recorded());
  out += "},\"sources\":";
  {
    MutexLock lock(&mutex_);
    AppendKeyedJson(out, varz_sources_);
  }
  out += '}';
  return out;
}

Result<std::string> HttpGet(const std::string& host, int port,
                            const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  timeval timeout{};
  timeout.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("numeric IPv4 host required: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IoError("connect to " + host + ":" + std::to_string(port) +
                           " failed");
  }
  const std::string request = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  if (!SendAll(fd, request)) {
    ::close(fd);
    return Status::IoError("send failed");
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);

  if (response.rfind("HTTP/1.", 0) != 0 || response.size() < 12) {
    return Status::IoError("malformed HTTP response");
  }
  const int status = std::atoi(response.c_str() + 9);
  const size_t body_at = response.find("\r\n\r\n");
  if (body_at == std::string::npos) {
    return Status::IoError("HTTP response without header terminator");
  }
  if (status != 200) {
    return Status::IoError("HTTP status " + std::to_string(status) + " for " +
                           path);
  }
  return response.substr(body_at + 4);
}

}  // namespace rps::obs
