// Process-wide metrics: lock-free counters, gauges and log-bucketed
// latency histograms behind a MetricRegistry with Prometheus-style
// text and JSON exposition.
//
// The paper's claims are cost trade-offs (O(1) queries vs O(n^(d/2))
// updates), so the repo needs one uniform way to observe them. Every
// subsystem registers metrics by name (convention:
// `rps_<subsystem>_<name>`) and increments them with relaxed atomics;
// reads are snapshots, exact only when nothing runs concurrently --
// the usual trade of exactness for a zero-coordination hot path.
//
// Usage:
//   static obs::Counter& hits =
//       obs::MetricRegistry::Global().GetCounter("rps_bufferpool_hits");
//   hits.Increment();
//
// Registration takes a mutex once; the returned reference is stable
// for the registry's lifetime, so instrumented code caches it in a
// function-local static (or a member) and pays one relaxed atomic add
// per event thereafter.

#ifndef RPS_OBS_METRICS_H_
#define RPS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/annotations.h"
#include "util/mutex.h"

namespace rps::obs {

/// Relaxed atomic counter whose value carries across copies
/// (std::atomic alone would delete the copy constructor). The shared
/// primitive under Counter and Histogram, also embedded directly by
/// structures that keep per-instance accounting (for example the
/// RelativePrefixSum lookup-cost counters).
class RelaxedCounter {
 public:
  RelaxedCounter() = default;
  RelaxedCounter(const RelaxedCounter& other) : value_(other.Load()) {}
  RelaxedCounter& operator=(const RelaxedCounter& other) {
    value_.store(other.Load(), std::memory_order_relaxed);
    return *this;
  }
  void Increment(int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  int64_t Load() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Monotonic counter. Registry-owned; obtain via
/// MetricRegistry::GetCounter.
class Counter {
 public:
  void Increment(int64_t n = 1) { value_.Increment(n); }
  int64_t Value() const { return value_.Load(); }
  void Reset() { value_.Reset(); }

 private:
  RelaxedCounter value_;
};

/// Last-write-wins double gauge (Add via CAS for concurrent
/// adjusters).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Latency histogram over power-of-two nanosecond buckets: bucket i
/// holds observations in (2^(i-1), 2^i] ns for i in
/// [0, kNumFiniteBuckets), plus one overflow bucket. 2^34 ns is
/// ~17 s, beyond any per-operation latency this repo measures.
/// Observations and the running sum are relaxed atomic adds, so
/// concurrent Observe calls never coordinate; snapshots are
/// consistent only in quiescence.
class Histogram {
 public:
  static constexpr int kNumFiniteBuckets = 35;
  static constexpr int kNumBuckets = kNumFiniteBuckets + 1;

  /// Upper bound of finite bucket `i`, in nanoseconds (2^i).
  static int64_t BucketBoundNanos(int i) { return int64_t{1} << i; }

  /// Index of the bucket recording `nanos` (negative values clamp to
  /// the first bucket).
  static int BucketIndex(int64_t nanos);

  void ObserveNanos(int64_t nanos);
  void Observe(double seconds) {
    ObserveNanos(static_cast<int64_t>(seconds * 1e9));
  }
  /// Records `count` observations of `nanos` each with three relaxed
  /// adds total -- for batch-processing callers that amortized one
  /// measurement over many operations.
  void ObserveNanosBatch(int64_t nanos, int64_t count);

  int64_t Count() const { return count_.Load(); }
  double SumSeconds() const {
    return static_cast<double>(sum_nanos_.Load()) * 1e-9;
  }
  int64_t BucketCount(int i) const {
    return buckets_[static_cast<size_t>(i)].Load();
  }

  /// Quantile estimate for `q` in [0, 1], in seconds: finds the
  /// bucket holding the rank-ceil(q*count) observation and
  /// interpolates linearly inside it. 0 when empty; observations in
  /// the overflow bucket report its lower bound.
  double Percentile(double q) const;

  void Reset();

 private:
  RelaxedCounter buckets_[kNumBuckets];
  RelaxedCounter count_;
  RelaxedCounter sum_nanos_;  // saturating enough: ~292 years
};

/// Metric labels in Prometheus's key/value form. Order is preserved
/// verbatim in keys and output, so callers must pass a consistent
/// order for the same metric.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Owns every metric. Get* registers on first use (under a mutex) and
/// returns a reference that stays valid for the registry's lifetime;
/// repeated calls with the same name+labels return the same object.
/// A name must keep one kind: requesting an existing metric as a
/// different kind aborts.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// The process-wide registry all built-in instrumentation uses.
  static MetricRegistry& Global();

  Counter& GetCounter(const std::string& name, const Labels& labels = {});
  Gauge& GetGauge(const std::string& name, const Labels& labels = {});
  Histogram& GetHistogram(const std::string& name, const Labels& labels = {});

  /// Attaches Prometheus help text to a metric family. RenderText
  /// emits it as a `# HELP` line before the family's `# TYPE`; call
  /// it where the family is registered, once, to document semantics
  /// that drifted from what the name alone implies (e.g.
  /// rps_wal_fsync_seconds measuring one barrier per *group* under
  /// group commit). Families without help render exactly as before.
  void SetHelp(const std::string& name, const std::string& help);

  /// Prometheus text exposition: `# TYPE` per family, one line per
  /// sample, families and label sets in lexicographic key order
  /// (deterministic for golden tests).
  std::string RenderText() const;

  /// JSON exposition: {"counters": [...], "gauges": [...],
  /// "histograms": [...]}, each entry carrying name, labels and
  /// values; histograms include count, sum_seconds, p50/p95/p99 and
  /// the non-empty buckets. Same deterministic ordering as
  /// RenderText.
  std::string RenderJson() const;

  /// Zeroes every metric's value (registrations stay). For tests and
  /// tools that scope a measurement to one run.
  void ResetAll();

  int64_t num_metrics() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string name;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& GetEntry(Kind kind, const std::string& name, const Labels& labels);

  mutable Mutex mutex_{"MetricRegistry.mutex"};
  // Keyed by `name{labels}` so families sort together for rendering.
  std::map<std::string, Entry> entries_ GUARDED_BY(mutex_);
  // Family name -> help text (families without an entry have none).
  std::map<std::string, std::string> help_ GUARDED_BY(mutex_);
};

}  // namespace rps::obs

#endif  // RPS_OBS_METRICS_H_
