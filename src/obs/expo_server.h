// Dependency-free HTTP exposition server: the live window into a
// serving engine.
//
// Offline BENCH_*.json snapshots show the paper's cost trade-off
// after the fact; this server shows it while it happens, from
// standard tooling (a Prometheus scraper, curl, a load balancer's
// health prober). Endpoints:
//
//   /metrics       Prometheus text exposition of the global registry
//   /metrics.json  JSON exposition (scripts/check_metrics_schema.py
//                  validates this live in CI)
//   /healthz       aggregated health: uptime plus every registered
//                  health source (engine status, durable-storage
//                  generation, ...)
//   /varz          process-level vitals: pid, obs gate, event-log and
//                  trace-ring drop counts, registered varz sources
//   /debug/slow    recent slow-query records with full span trees
//                  (obs/event_log.h SlowQueryLog)
//
// Deliberately small: blocking POSIX sockets, one accept-and-serve
// thread, one request per connection. A metrics scrape every few
// seconds does not need an event loop, and a dependency-free server
// can run inside every binary in the repo -- the workload driver, the
// CLI's `serve` command, a test. Handle() is exposed directly so
// tests can exercise routing without a socket.

#ifndef RPS_OBS_EXPO_SERVER_H_
#define RPS_OBS_EXPO_SERVER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/annotations.h"
#include "util/mutex.h"
#include "util/status.h"

namespace rps::obs {

/// Produces one JSON value (object, string, number...) describing the
/// source's current state. Called per scrape with no lock held by the
/// caller beyond the source registry's; must be thread-safe against
/// the traffic it describes.
using JsonSource = std::function<std::string()>;

class ExpoServer {
 public:
  struct Options {
    int port = 0;  // 0 picks an ephemeral port (read it from port())
    std::string bind_address = "127.0.0.1";
  };

  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };

  ExpoServer();  // default Options: ephemeral port on 127.0.0.1
  explicit ExpoServer(Options options);
  ExpoServer(const ExpoServer&) = delete;
  ExpoServer& operator=(const ExpoServer&) = delete;
  ~ExpoServer();  // stops if running

  /// Binds, listens and starts the serving thread.
  Status Start() EXCLUDES(mutex_);

  /// Stops the serving thread and closes the socket. Idempotent.
  void Stop() EXCLUDES(mutex_);

  /// The bound port (after a successful Start).
  int port() const EXCLUDES(mutex_);

  /// Registers a named health source, reported under /healthz.
  /// Register before Start or between requests; names must be unique.
  void AddHealthSource(const std::string& name, JsonSource source)
      EXCLUDES(mutex_);

  /// Registers a named varz source, reported under /varz.
  void AddVarzSource(const std::string& name, JsonSource source)
      EXCLUDES(mutex_);

  /// Routes one request path (query strings ignored) to its payload.
  /// Public for in-process tests and tools.
  Response Handle(const std::string& path) const EXCLUDES(mutex_);

 private:
  void ServeLoop(int listen_fd);
  void HandleConnection(int fd) const;
  std::string RenderHealthz() const EXCLUDES(mutex_);
  std::string RenderVarz() const EXCLUDES(mutex_);

  const Options options_;
  mutable Mutex mutex_{"ExpoServer.mutex"};
  int listen_fd_ GUARDED_BY(mutex_) = -1;
  int port_ GUARDED_BY(mutex_) = 0;
  std::thread serve_thread_ GUARDED_BY(mutex_);
  int64_t start_nanos_ GUARDED_BY(mutex_) = 0;
  std::vector<std::pair<std::string, JsonSource>> health_sources_
      GUARDED_BY(mutex_);
  std::vector<std::pair<std::string, JsonSource>> varz_sources_
      GUARDED_BY(mutex_);
};

/// Minimal blocking HTTP/1.1 GET (the scrape client for tests and
/// `rps_tool metrics --watch`). Returns the response body on HTTP
/// 200; any other status, or a transport failure, is an error.
Result<std::string> HttpGet(const std::string& host, int port,
                            const std::string& path);

}  // namespace rps::obs

#endif  // RPS_OBS_EXPO_SERVER_H_
