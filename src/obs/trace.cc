#include "obs/trace.h"

#include <chrono>

#include "obs/metrics.h"
#include "util/check.h"

namespace rps::obs {
namespace {

SpanCollector*& CurrentCollectorSlot() {
  thread_local SpanCollector* current = nullptr;
  return current;
}

}  // namespace

int64_t TraceNowNanos() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              epoch)
      .count();
}

TraceBuffer::TraceBuffer(int64_t capacity)
    : capacity_(capacity < 1 ? 1 : capacity),
      dropped_spans_metric_(
          &MetricRegistry::Global().GetCounter("rps_trace_dropped_spans")) {
  events_.reserve(static_cast<size_t>(capacity_));
}

TraceBuffer& TraceBuffer::Global() {
  static TraceBuffer* const buffer = new TraceBuffer();
  return *buffer;
}

void TraceBuffer::Record(const TraceEvent& event) {
  MutexLock lock(&mutex_);
  if (static_cast<int64_t>(events_.size()) < capacity_) {
    events_.push_back(event);
  } else {
    events_[static_cast<size_t>(next_)] = event;
    ++dropped_;
    dropped_spans_metric_->Increment();
  }
  next_ = (next_ + 1) % capacity_;
  ++total_;
}

std::vector<TraceEvent> TraceBuffer::Snapshot() const {
  MutexLock lock(&mutex_);
  if (static_cast<int64_t>(events_.size()) < capacity_) {
    return events_;  // not yet wrapped: already oldest-first
  }
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  for (int64_t i = 0; i < capacity_; ++i) {
    out.push_back(events_[static_cast<size_t>((next_ + i) % capacity_)]);
  }
  return out;
}

int64_t TraceBuffer::total_recorded() const {
  MutexLock lock(&mutex_);
  return total_;
}

int64_t TraceBuffer::dropped() const {
  MutexLock lock(&mutex_);
  return dropped_;
}

void TraceBuffer::Clear() {
  MutexLock lock(&mutex_);
  events_.clear();
  next_ = 0;
  total_ = 0;
  dropped_ = 0;
}

std::string TraceBuffer::RenderJson() const {
  const std::vector<TraceEvent> events = Snapshot();
  std::string out = "[";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    if (i > 0) out += ',';
    out += "{\"op\":\"";
    out += event.op;
    out += "\",\"start_nanos\":";
    out += std::to_string(event.start_nanos);
    out += ",\"duration_nanos\":";
    out += std::to_string(event.duration_nanos);
    out += ",\"primary_cells\":";
    out += std::to_string(event.primary_cells);
    out += ",\"aux_cells\":";
    out += std::to_string(event.aux_cells);
    out += '}';
  }
  out += ']';
  return out;
}

SpanCollector::SpanCollector() : previous_(CurrentCollectorSlot()) {
  CurrentCollectorSlot() = this;
}

SpanCollector::~SpanCollector() { CurrentCollectorSlot() = previous_; }

SpanCollector* SpanCollector::Current() { return CurrentCollectorSlot(); }

int SpanCollector::OnSpanStart(const char* op, int64_t start_nanos) {
  const int index = static_cast<int>(spans_.size());
  CollectedSpan span;
  span.op = op;
  span.parent = open_;
  span.start_nanos = start_nanos;
  spans_.push_back(span);
  open_ = static_cast<int32_t>(index);
  return index;
}

void SpanCollector::OnSpanEnd(int index, int64_t duration_nanos,
                              int64_t primary_cells, int64_t aux_cells) {
  RPS_DCHECK(index >= 0 && index < static_cast<int>(spans_.size()));
  CollectedSpan& span = spans_[static_cast<size_t>(index)];
  span.duration_nanos = duration_nanos;
  span.primary_cells = primary_cells;
  span.aux_cells = aux_cells;
  // Spans close innermost-first, so the parent of the closing span is
  // the new innermost open one.
  if (open_ == index) open_ = span.parent;
}

}  // namespace rps::obs
