#include "obs/trace.h"

#include <chrono>

namespace rps::obs {

int64_t TraceNowNanos() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              epoch)
      .count();
}

TraceBuffer::TraceBuffer(int64_t capacity)
    : capacity_(capacity < 1 ? 1 : capacity) {
  events_.reserve(static_cast<size_t>(capacity_));
}

TraceBuffer& TraceBuffer::Global() {
  static TraceBuffer* const buffer = new TraceBuffer();
  return *buffer;
}

void TraceBuffer::Record(const TraceEvent& event) {
  MutexLock lock(&mutex_);
  if (static_cast<int64_t>(events_.size()) < capacity_) {
    events_.push_back(event);
  } else {
    events_[static_cast<size_t>(next_)] = event;
  }
  next_ = (next_ + 1) % capacity_;
  ++total_;
}

std::vector<TraceEvent> TraceBuffer::Snapshot() const {
  MutexLock lock(&mutex_);
  if (static_cast<int64_t>(events_.size()) < capacity_) {
    return events_;  // not yet wrapped: already oldest-first
  }
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  for (int64_t i = 0; i < capacity_; ++i) {
    out.push_back(events_[static_cast<size_t>((next_ + i) % capacity_)]);
  }
  return out;
}

int64_t TraceBuffer::total_recorded() const {
  MutexLock lock(&mutex_);
  return total_;
}

void TraceBuffer::Clear() {
  MutexLock lock(&mutex_);
  events_.clear();
  next_ = 0;
  total_ = 0;
}

std::string TraceBuffer::RenderJson() const {
  const std::vector<TraceEvent> events = Snapshot();
  std::string out = "[";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    if (i > 0) out += ',';
    out += "{\"op\":\"";
    out += event.op;
    out += "\",\"start_nanos\":";
    out += std::to_string(event.start_nanos);
    out += ",\"duration_nanos\":";
    out += std::to_string(event.duration_nanos);
    out += ",\"primary_cells\":";
    out += std::to_string(event.primary_cells);
    out += ",\"aux_cells\":";
    out += std::to_string(event.aux_cells);
    out += '}';
  }
  out += ']';
  return out;
}

}  // namespace rps::obs
