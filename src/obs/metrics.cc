#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace rps::obs {
namespace {

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// `k1="v1",k2="v2"` -- the text between the braces of a Prometheus
/// sample line, and the registry key suffix.
std::string RenderLabels(const Labels& labels) {
  std::string out;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first;
    out += "=\"";
    out += labels[i].second;
    out += '"';
  }
  return out;
}

/// A sample line's name+labels part, with `extra` spliced in as an
/// additional label (for histogram `le`).
std::string SampleName(const std::string& name, const Labels& labels,
                       const std::string& extra = "") {
  std::string out = name;
  const std::string rendered = RenderLabels(labels);
  if (!rendered.empty() || !extra.empty()) {
    out += '{';
    out += rendered;
    if (!rendered.empty() && !extra.empty()) out += ',';
    out += extra;
    out += '}';
  }
  return out;
}

std::string JsonLabels(const Labels& labels) {
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += JsonEscape(labels[i].first);
    out += "\":\"";
    out += JsonEscape(labels[i].second);
    out += '"';
  }
  out += '}';
  return out;
}

}  // namespace

int Histogram::BucketIndex(int64_t nanos) {
  if (nanos <= 1) return 0;
  if (nanos > BucketBoundNanos(kNumFiniteBuckets - 1)) {
    return kNumFiniteBuckets;  // overflow bucket
  }
  // Smallest i with nanos <= 2^i, i.e. ceil(log2(nanos)).
  return static_cast<int>(std::bit_width(static_cast<uint64_t>(nanos - 1)));
}

void Histogram::ObserveNanos(int64_t nanos) {
  if (nanos < 0) nanos = 0;
  buckets_[static_cast<size_t>(BucketIndex(nanos))].Increment();
  count_.Increment();
  sum_nanos_.Increment(nanos);
}

void Histogram::ObserveNanosBatch(int64_t nanos, int64_t count) {
  if (count <= 0) return;
  if (nanos < 0) nanos = 0;
  buckets_[static_cast<size_t>(BucketIndex(nanos))].Increment(count);
  count_.Increment(count);
  sum_nanos_.Increment(nanos * count);
}

double Histogram::Percentile(double q) const {
  const int64_t count = count_.Load();
  if (count <= 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  int64_t rank =
      static_cast<int64_t>(std::ceil(q * static_cast<double>(count)));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;

  int64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const int64_t in_bucket = buckets_[static_cast<size_t>(i)].Load();
    if (cumulative + in_bucket < rank) {
      cumulative += in_bucket;
      continue;
    }
    // When the rank bucket holds every observation, the true quantile
    // is knowable exactly from the sum: all samples share the bucket,
    // so their mean (clamped to the bucket) IS the constant value.
    // Plain interpolation would report up to the bucket's upper bound
    // -- a 2x over-report for a constant sample at a bucket boundary.
    const bool all_here = in_bucket == count;
    const double mean = all_here ? static_cast<double>(sum_nanos_.Load()) /
                                       static_cast<double>(count)
                                 : 0.0;
    if (i == kNumFiniteBuckets) {
      // Overflow: its lower bound is the best defensible claim, unless
      // every sample landed here and the (higher) mean speaks exactly.
      const double lower =
          static_cast<double>(BucketBoundNanos(kNumFiniteBuckets - 1));
      return (all_here ? std::max(lower, mean) : lower) * 1e-9;
    }
    const double lo =
        i == 0 ? 0.0 : static_cast<double>(BucketBoundNanos(i - 1));
    const double hi = static_cast<double>(BucketBoundNanos(i));
    if (all_here) {
      return std::min(hi, std::max(lo, mean)) * 1e-9;
    }
    const double fraction = static_cast<double>(rank - cumulative) /
                            static_cast<double>(in_bucket);
    return (lo + fraction * (hi - lo)) * 1e-9;
  }
  return 0.0;  // unreachable: count > 0 places rank in some bucket
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.Reset();
  count_.Reset();
  sum_nanos_.Reset();
}

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* const registry = new MetricRegistry();
  return *registry;
}

MetricRegistry::Entry& MetricRegistry::GetEntry(Kind kind,
                                                const std::string& name,
                                                const Labels& labels) {
  std::string key = name;
  const std::string rendered = RenderLabels(labels);
  if (!rendered.empty()) {
    key += '{';
    key += rendered;
    key += '}';
  }
  MutexLock lock(&mutex_);
  auto [it, inserted] = entries_.try_emplace(std::move(key));
  Entry& entry = it->second;
  if (inserted) {
    entry.kind = kind;
    entry.name = name;
    entry.labels = labels;
    switch (kind) {
      case Kind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        entry.histogram = std::make_unique<Histogram>();
        break;
    }
  } else if (entry.kind != kind) {
    std::fprintf(stderr,
                 "fatal: metric '%s' requested as two different kinds\n",
                 name.c_str());
    std::abort();
  }
  return entry;
}

Counter& MetricRegistry::GetCounter(const std::string& name,
                                    const Labels& labels) {
  return *GetEntry(Kind::kCounter, name, labels).counter;
}

Gauge& MetricRegistry::GetGauge(const std::string& name,
                                const Labels& labels) {
  return *GetEntry(Kind::kGauge, name, labels).gauge;
}

Histogram& MetricRegistry::GetHistogram(const std::string& name,
                                        const Labels& labels) {
  return *GetEntry(Kind::kHistogram, name, labels).histogram;
}

void MetricRegistry::SetHelp(const std::string& name,
                             const std::string& help) {
  MutexLock lock(&mutex_);
  help_[name] = help;
}

std::string MetricRegistry::RenderText() const {
  MutexLock lock(&mutex_);
  std::string out;
  std::string last_family;
  for (const auto& [key, entry] : entries_) {
    if (entry.name != last_family) {
      if (const auto help = help_.find(entry.name); help != help_.end()) {
        out += "# HELP ";
        out += entry.name;
        out += ' ';
        out += help->second;
        out += '\n';
      }
      out += "# TYPE ";
      out += entry.name;
      switch (entry.kind) {
        case Kind::kCounter:
          out += " counter\n";
          break;
        case Kind::kGauge:
          out += " gauge\n";
          break;
        case Kind::kHistogram:
          out += " histogram\n";
          break;
      }
      last_family = entry.name;
    }
    switch (entry.kind) {
      case Kind::kCounter:
        out += SampleName(entry.name, entry.labels);
        out += ' ';
        out += std::to_string(entry.counter->Value());
        out += '\n';
        break;
      case Kind::kGauge:
        out += SampleName(entry.name, entry.labels);
        out += ' ';
        out += FormatDouble(entry.gauge->Value());
        out += '\n';
        break;
      case Kind::kHistogram: {
        const Histogram& hist = *entry.histogram;
        const int64_t total = hist.Count();
        // Elide the all-zero prefix and the all-full suffix of the
        // cumulative bucket lines; `+Inf` always closes the series.
        int64_t cumulative = 0;
        for (int i = 0; i < Histogram::kNumFiniteBuckets; ++i) {
          cumulative += hist.BucketCount(i);
          if (cumulative == 0) continue;
          const double le =
              static_cast<double>(Histogram::BucketBoundNanos(i)) * 1e-9;
          out += SampleName(entry.name + "_bucket", entry.labels,
                            "le=\"" + FormatDouble(le) + "\"");
          out += ' ';
          out += std::to_string(cumulative);
          out += '\n';
          if (cumulative == total) break;
        }
        out += SampleName(entry.name + "_bucket", entry.labels,
                          "le=\"+Inf\"");
        out += ' ';
        out += std::to_string(total);
        out += '\n';
        out += SampleName(entry.name + "_sum", entry.labels);
        out += ' ';
        out += FormatDouble(hist.SumSeconds());
        out += '\n';
        out += SampleName(entry.name + "_count", entry.labels);
        out += ' ';
        out += std::to_string(total);
        out += '\n';
        break;
      }
    }
  }
  return out;
}

std::string MetricRegistry::RenderJson() const {
  MutexLock lock(&mutex_);
  std::string counters, gauges, histograms;
  for (const auto& [key, entry] : entries_) {
    std::string item = "{\"name\":\"";
    item += JsonEscape(entry.name);
    item += "\",\"labels\":";
    item += JsonLabels(entry.labels);
    switch (entry.kind) {
      case Kind::kCounter:
        item += ",\"value\":";
        item += std::to_string(entry.counter->Value());
        item += '}';
        if (!counters.empty()) counters += ',';
        counters += item;
        break;
      case Kind::kGauge:
        item += ",\"value\":";
        item += FormatDouble(entry.gauge->Value());
        item += '}';
        if (!gauges.empty()) gauges += ',';
        gauges += item;
        break;
      case Kind::kHistogram: {
        const Histogram& hist = *entry.histogram;
        item += ",\"count\":";
        item += std::to_string(hist.Count());
        item += ",\"sum_seconds\":";
        item += FormatDouble(hist.SumSeconds());
        item += ",\"p50\":";
        item += FormatDouble(hist.Percentile(0.50));
        item += ",\"p95\":";
        item += FormatDouble(hist.Percentile(0.95));
        item += ",\"p99\":";
        item += FormatDouble(hist.Percentile(0.99));
        item += ",\"buckets\":[";
        bool first = true;
        for (int i = 0; i < Histogram::kNumFiniteBuckets; ++i) {
          const int64_t in_bucket = hist.BucketCount(i);
          if (in_bucket == 0) continue;
          if (!first) item += ',';
          first = false;
          item += "{\"le_seconds\":";
          item += FormatDouble(
              static_cast<double>(Histogram::BucketBoundNanos(i)) * 1e-9);
          item += ",\"count\":";
          item += std::to_string(in_bucket);
          item += '}';
        }
        item += "],\"overflow\":";
        item += std::to_string(
            hist.BucketCount(Histogram::kNumFiniteBuckets));
        item += '}';
        if (!histograms.empty()) histograms += ',';
        histograms += item;
        break;
      }
    }
  }
  std::string out = "{\"counters\":[";
  out += counters;
  out += "],\"gauges\":[";
  out += gauges;
  out += "],\"histograms\":[";
  out += histograms;
  out += "]}";
  return out;
}

void MetricRegistry::ResetAll() {
  MutexLock lock(&mutex_);
  for (auto& [key, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        entry.counter->Reset();
        break;
      case Kind::kGauge:
        entry.gauge->Reset();
        break;
      case Kind::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
}

int64_t MetricRegistry::num_metrics() const {
  MutexLock lock(&mutex_);
  return static_cast<int64_t>(entries_.size());
}

}  // namespace rps::obs
