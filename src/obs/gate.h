// Process-wide observability kill switch.
//
// Serving instrumentation (wide events, trace spans, latency
// histograms) must cost so little that it can stay on in production;
// the obs_overhead benchmark proves the budget by comparing the
// instrumented hot paths against the same paths with observability
// off. This header is the switch the comparison flips: `Enabled()` is
// one relaxed atomic load, initialised from the RPS_OBS_OFF
// environment variable (set to anything but "0" to start dark) and
// flippable at runtime for benchmarks and tests.
//
// Metric *registration* is never gated -- a scrape of a dark process
// still shows every metric name, just with frozen values -- only the
// per-operation work (observations, span capture, event emission) is.

#ifndef RPS_OBS_GATE_H_
#define RPS_OBS_GATE_H_

#include <atomic>
#include <cstdlib>

namespace rps::obs {

namespace gate_internal {

inline bool InitialEnabled() {
  const char* off = std::getenv("RPS_OBS_OFF");
  return off == nullptr || off[0] == '\0' ||
         (off[0] == '0' && off[1] == '\0');
}

inline std::atomic<bool>& Flag() {
  static std::atomic<bool> enabled{InitialEnabled()};
  return enabled;
}

}  // namespace gate_internal

/// Whether per-operation instrumentation should run. Hot paths check
/// this once per operation (not per cell).
inline bool Enabled() {
  return gate_internal::Flag().load(std::memory_order_relaxed);
}

/// Runtime override (benchmarks, tests). Affects only work performed
/// after the call; in-flight operations finish under the old setting.
inline void SetEnabled(bool enabled) {
  gate_internal::Flag().store(enabled, std::memory_order_relaxed);
}

}  // namespace rps::obs

#endif  // RPS_OBS_GATE_H_
