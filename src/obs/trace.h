// Per-operation query/update tracing into a bounded ring buffer.
//
// A TraceSpan brackets one logical operation (an engine query, an
// insert, a CLI command phase): it captures wall time on
// construction, optionally collects a touched-cell breakdown, and on
// destruction appends one TraceEvent to a TraceBuffer. The buffer is
// a fixed-capacity ring -- the newest events overwrite the oldest, so
// tracing is always on without unbounded memory, and a snapshot after
// an incident shows the most recent operations.
//
// Spans record at operation granularity (microseconds and up), not
// per cell lookup, so the buffer's mutex is uncontended-cheap
// relative to the work being traced; the hot cell paths stick to the
// relaxed counters in obs/metrics.h.

#ifndef RPS_OBS_TRACE_H_
#define RPS_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/annotations.h"
#include "util/mutex.h"
#include "util/stopwatch.h"

namespace rps::obs {

/// One completed operation. `op` must point at a string with static
/// storage duration (a literal); events store the pointer only.
struct TraceEvent {
  const char* op = "";
  int64_t start_nanos = 0;     // since the process trace epoch
  int64_t duration_nanos = 0;
  int64_t primary_cells = 0;   // touched main-array cells (RP), if known
  int64_t aux_cells = 0;       // touched auxiliary cells (overlay), if known
};

/// Bounded MPMC ring of TraceEvents. Thread-safe; Record overwrites
/// the oldest event once `capacity` is reached.
class TraceBuffer {
 public:
  static constexpr int64_t kDefaultCapacity = 4096;

  explicit TraceBuffer(int64_t capacity = kDefaultCapacity);

  /// The process-wide buffer TraceSpan records into by default.
  static TraceBuffer& Global();

  void Record(const TraceEvent& event);

  /// Retained events, oldest first.
  std::vector<TraceEvent> Snapshot() const;

  /// Events ever recorded (>= retained when the ring has wrapped).
  int64_t total_recorded() const;
  int64_t capacity() const { return capacity_; }

  void Clear();

  /// JSON array of the retained events, oldest first.
  std::string RenderJson() const;

 private:
  const int64_t capacity_;
  mutable Mutex mutex_{"TraceBuffer.mutex"};
  // Ring storage, size <= capacity_.
  std::vector<TraceEvent> events_ GUARDED_BY(mutex_);
  int64_t next_ GUARDED_BY(mutex_) = 0;  // ring write position
  int64_t total_ GUARDED_BY(mutex_) = 0;
};

/// Nanoseconds since the process trace epoch (first use).
int64_t TraceNowNanos();

/// RAII span: times construction-to-destruction and records one
/// event. Move-free and copy-free by design; create one per
/// operation on the stack.
class TraceSpan {
 public:
  explicit TraceSpan(const char* op, TraceBuffer* buffer = nullptr)
      : op_(op),
        buffer_(buffer != nullptr ? buffer : &TraceBuffer::Global()),
        start_nanos_(TraceNowNanos()) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a touched-cell breakdown (e.g. from UpdateStats).
  void SetCells(int64_t primary, int64_t aux) {
    primary_cells_ = primary;
    aux_cells_ = aux;
  }

  ~TraceSpan() {
    TraceEvent event;
    event.op = op_;
    event.start_nanos = start_nanos_;
    event.duration_nanos = watch_.ElapsedNanos();
    event.primary_cells = primary_cells_;
    event.aux_cells = aux_cells_;
    buffer_->Record(event);
  }

 private:
  const char* op_;
  TraceBuffer* buffer_;
  int64_t start_nanos_;
  Stopwatch watch_;
  int64_t primary_cells_ = 0;
  int64_t aux_cells_ = 0;
};

}  // namespace rps::obs

#endif  // RPS_OBS_TRACE_H_
