// Per-operation query/update tracing into a bounded ring buffer.
//
// A TraceSpan brackets one logical operation (an engine query, an
// insert, a CLI command phase): it captures wall time on
// construction, optionally collects a touched-cell breakdown, and on
// destruction appends one TraceEvent to a TraceBuffer. The buffer is
// a fixed-capacity ring -- the newest events overwrite the oldest, so
// tracing is always on without unbounded memory, and a snapshot after
// an incident shows the most recent operations. Overwrites are not
// silent: every evicted event increments the process-wide
// `rps_trace_dropped_spans` counter, so a scrape shows when the ring
// is too small for the operation rate.
//
// Spans record at operation granularity (microseconds and up), not
// per cell lookup, so the buffer's mutex is uncontended-cheap
// relative to the work being traced; the hot cell paths stick to the
// relaxed counters in obs/metrics.h.
//
// Span trees. While a SpanCollector is installed on a thread (the
// slow-query log in obs/event_log.h does this for requests it may
// need to explain), every TraceSpan and CollectorSpan that opens on
// that thread also records into the collector, with parent indices
// reconstructing the nesting. CollectorSpan is the cheap variant for
// interior structure (one thread-local load when no collector is
// active, and it never touches the TraceBuffer), so hot paths like
// the core range-sum can expose themselves to slow-query capture
// without paying the ring's mutex per operation.

#ifndef RPS_OBS_TRACE_H_
#define RPS_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/annotations.h"
#include "util/mutex.h"
#include "util/stopwatch.h"

namespace rps::obs {

class Counter;

/// One completed operation. `op` must point at a string with static
/// storage duration (a literal); events store the pointer only.
struct TraceEvent {
  const char* op = "";
  int64_t start_nanos = 0;     // since the process trace epoch
  int64_t duration_nanos = 0;
  int64_t primary_cells = 0;   // touched main-array cells (RP), if known
  int64_t aux_cells = 0;       // touched auxiliary cells (overlay), if known
};

/// Bounded MPMC ring of TraceEvents. Thread-safe; Record overwrites
/// the oldest event once `capacity` is reached (counted in
/// `rps_trace_dropped_spans` and dropped()).
class TraceBuffer {
 public:
  static constexpr int64_t kDefaultCapacity = 4096;

  explicit TraceBuffer(int64_t capacity = kDefaultCapacity);

  /// The process-wide buffer TraceSpan records into by default.
  static TraceBuffer& Global();

  void Record(const TraceEvent& event);

  /// Retained events, oldest first.
  std::vector<TraceEvent> Snapshot() const;

  /// Events ever recorded (>= retained when the ring has wrapped).
  int64_t total_recorded() const;

  /// Events overwritten before anyone could snapshot them.
  int64_t dropped() const;

  int64_t capacity() const { return capacity_; }

  void Clear();

  /// JSON array of the retained events, oldest first.
  std::string RenderJson() const;

 private:
  const int64_t capacity_;
  // All TraceBuffer instances feed the one process-wide drop counter;
  // per-instance exactness lives in dropped().
  Counter* const dropped_spans_metric_;
  mutable Mutex mutex_{"TraceBuffer.mutex"};
  // Ring storage, size <= capacity_.
  std::vector<TraceEvent> events_ GUARDED_BY(mutex_);
  int64_t next_ GUARDED_BY(mutex_) = 0;  // ring write position
  int64_t total_ GUARDED_BY(mutex_) = 0;
  int64_t dropped_ GUARDED_BY(mutex_) = 0;
};

/// Nanoseconds since the process trace epoch (first use).
int64_t TraceNowNanos();

/// One span inside a collected tree. `parent` indexes into the same
/// vector; -1 marks the root.
struct CollectedSpan {
  const char* op = "";
  int32_t parent = -1;
  int64_t start_nanos = 0;
  int64_t duration_nanos = 0;
  int64_t primary_cells = 0;
  int64_t aux_cells = 0;
};

/// Gathers the spans of one request into a tree. Install-by-
/// construction: the constructor makes this the calling thread's
/// current collector (nesting saves the previous one), the destructor
/// restores it. Single-threaded by design -- spans running on pool
/// workers belong to the worker's collector (normally none), which
/// keeps capture race-free without any locking.
class SpanCollector {
 public:
  SpanCollector();
  SpanCollector(const SpanCollector&) = delete;
  SpanCollector& operator=(const SpanCollector&) = delete;
  ~SpanCollector();

  /// The calling thread's innermost active collector, or null.
  static SpanCollector* Current();

  /// Opens a span; returns its index. The innermost open span becomes
  /// the parent.
  int OnSpanStart(const char* op, int64_t start_nanos);

  /// Closes the span `index` (spans close innermost-first).
  void OnSpanEnd(int index, int64_t duration_nanos, int64_t primary_cells,
                 int64_t aux_cells);

  const std::vector<CollectedSpan>& spans() const { return spans_; }
  std::vector<CollectedSpan> TakeSpans() { return std::move(spans_); }

 private:
  std::vector<CollectedSpan> spans_;
  int32_t open_ = -1;  // innermost open span, -1 at the root
  SpanCollector* previous_ = nullptr;
};

/// RAII span: times construction-to-destruction and records one
/// event (and, when a SpanCollector is active on this thread, one
/// tree node). Move-free and copy-free by design; create one per
/// operation on the stack.
class TraceSpan {
 public:
  explicit TraceSpan(const char* op, TraceBuffer* buffer = nullptr)
      : op_(op),
        buffer_(buffer != nullptr ? buffer : &TraceBuffer::Global()),
        collector_(SpanCollector::Current()),
        start_nanos_(TraceNowNanos()) {
    if (collector_ != nullptr) {
      index_ = collector_->OnSpanStart(op_, start_nanos_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a touched-cell breakdown (e.g. from UpdateStats).
  void SetCells(int64_t primary, int64_t aux) {
    primary_cells_ = primary;
    aux_cells_ = aux;
  }

  ~TraceSpan() {
    TraceEvent event;
    event.op = op_;
    event.start_nanos = start_nanos_;
    event.duration_nanos = watch_.ElapsedNanos();
    event.primary_cells = primary_cells_;
    event.aux_cells = aux_cells_;
    buffer_->Record(event);
    if (collector_ != nullptr) {
      collector_->OnSpanEnd(index_, event.duration_nanos, primary_cells_,
                            aux_cells_);
    }
  }

 private:
  const char* op_;
  TraceBuffer* buffer_;
  SpanCollector* collector_;
  int index_ = -1;
  int64_t start_nanos_;
  Stopwatch watch_;
  int64_t primary_cells_ = 0;
  int64_t aux_cells_ = 0;
};

/// Collector-only span: records a tree node when (and only when) a
/// SpanCollector is active on this thread; otherwise costs one
/// thread-local load. For interior operations too hot for the
/// TraceBuffer mutex.
class CollectorSpan {
 public:
  explicit CollectorSpan(const char* op)
      : collector_(SpanCollector::Current()) {
    if (collector_ != nullptr) {
      start_nanos_ = TraceNowNanos();
      index_ = collector_->OnSpanStart(op, start_nanos_);
    }
  }
  CollectorSpan(const CollectorSpan&) = delete;
  CollectorSpan& operator=(const CollectorSpan&) = delete;

  void SetCells(int64_t primary, int64_t aux) {
    primary_cells_ = primary;
    aux_cells_ = aux;
  }

  ~CollectorSpan() {
    if (collector_ != nullptr) {
      collector_->OnSpanEnd(index_, TraceNowNanos() - start_nanos_,
                            primary_cells_, aux_cells_);
    }
  }

 private:
  SpanCollector* const collector_;
  int index_ = -1;
  int64_t start_nanos_ = 0;
  int64_t primary_cells_ = 0;
  int64_t aux_cells_ = 0;
};

}  // namespace rps::obs

#endif  // RPS_OBS_TRACE_H_
