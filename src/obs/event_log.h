// Wide-event query log and slow-query log: the serving-observability
// record of what one request actually did.
//
// Aggregate metrics (obs/metrics.h) answer "how is the engine doing";
// they cannot answer "why was THIS range-sum slow". The wide-event
// log can: every query, update and checkpoint emits one structured
// record -- trace id, box volume, cells touched, pool hits/misses,
// WAL bytes, latency -- that a drainer thread streams to a JSONL file
// for offline slicing. The emission fast path is allocation-free and
// lock-free: the producer fills a fixed-size WideEvent on the stack
// and pushes it into a bounded MPSC ring (a Vyukov-style sequenced
// ring); when the ring is full the event is dropped and counted
// (`rps_event_log_dropped_total`), never blocking the serving thread.
//
// The slow-query log is the second half of the story: for requests
// over a configurable latency threshold it keeps the full TraceSpan
// tree (obs/trace.h SpanCollector), so a slow range-sum can be
// attributed to a specific overlay/anchor access pattern rather than
// a number. Recent slow queries are served on the exposition server's
// /debug/slow endpoint (obs/expo_server.h).
//
// RequestScope is the one RAII that instrumented entry points
// (OlapEngine, DurableRps, the workload driver) create per request;
// it decides -- once, up front -- whether this request needs an event,
// a span tree, both, or (observability off, no sink, no threshold)
// nothing at all.

#ifndef RPS_OBS_EVENT_LOG_H_
#define RPS_OBS_EVENT_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/gate.h"
#include "obs/trace.h"
#include "util/annotations.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace rps::obs {

class Counter;

/// Process-unique request id, shared by a request's wide event and
/// its slow-query record.
uint64_t NextTraceId();

enum class WideEventKind : uint8_t { kQuery, kUpdate, kCheckpoint };

const char* WideEventKindName(WideEventKind kind);

/// One request's structured record. Fixed-size and trivially
/// copyable so the emission path never allocates; `op` must be a
/// string literal, `method` is copied into an inline buffer.
struct WideEvent {
  static constexpr size_t kMethodCapacity = 32;

  WideEventKind kind = WideEventKind::kQuery;
  bool ok = true;
  const char* op = "";
  char method[kMethodCapacity] = {};
  uint64_t trace_id = 0;
  int64_t start_nanos = 0;  // process trace epoch (obs/trace.h)
  int64_t duration_nanos = 0;
  int64_t box_volume = 0;  // cells in the query range, if a query
  int64_t primary_cells = 0;
  int64_t aux_cells = 0;
  int64_t pool_hits = 0;
  int64_t pool_misses = 0;
  int64_t wal_bytes = 0;

  void set_method(std::string_view name);
};
static_assert(std::is_trivially_copyable_v<WideEvent>);

/// One JSONL line (no trailing newline) for `event`. The field set
/// and order are a stability contract pinned by a golden test and
/// documented in docs/OBSERVABILITY.md.
std::string RenderWideEventJson(const WideEvent& event);

/// Bounded lock-free ring of WideEvents: many producers, one
/// consumer (the EventLog drainer). Capacity rounds up to a power of
/// two. TryPush never blocks and never allocates; it fails (drop)
/// when the ring is full.
class EventRing {
 public:
  explicit EventRing(int64_t capacity);
  EventRing(const EventRing&) = delete;
  EventRing& operator=(const EventRing&) = delete;

  bool TryPush(const WideEvent& event);

  /// Single-consumer pop; false when empty.
  bool TryPop(WideEvent* out);

  int64_t capacity() const { return static_cast<int64_t>(mask_) + 1; }

 private:
  struct Slot {
    std::atomic<uint64_t> sequence{0};
    WideEvent event;
  };

  const uint64_t mask_;
  std::unique_ptr<Slot[]> slots_;
  alignas(64) std::atomic<uint64_t> head_{0};  // producers claim here
  alignas(64) std::atomic<uint64_t> tail_{0};  // consumer position
};

/// The wide-event pipeline: producers Emit into the ring, a
/// background drainer renders JSONL and appends to the sink file.
/// Inactive (no sink) the log costs one relaxed load per request.
class EventLog {
 public:
  static constexpr int64_t kDefaultRingCapacity = 8192;

  explicit EventLog(int64_t ring_capacity = kDefaultRingCapacity);
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;
  ~EventLog();

  /// The process-wide log RequestScope emits into.
  static EventLog& Global();

  /// Opens `path` for appending and starts the drainer thread.
  Status Open(const std::string& path) EXCLUDES(mutex_);

  /// Stops the drainer, drains remaining events, flushes and closes
  /// the sink. Idempotent.
  void Close() EXCLUDES(mutex_);

  /// Whether a sink is open (Emit is a no-op otherwise).
  bool active() const { return active_.load(std::memory_order_relaxed); }

  /// Fast path: enqueue one event. Lock-free, allocation-free; drops
  /// (and counts) when the ring is full or the log is inactive.
  void Emit(const WideEvent& event);

  int64_t emitted() const { return emitted_.load(std::memory_order_relaxed); }
  int64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  int64_t written() const { return written_.load(std::memory_order_relaxed); }

 private:
  void DrainLoop(std::FILE* file);

  EventRing ring_;
  std::atomic<bool> active_{false};
  std::atomic<bool> stop_{false};
  std::atomic<int64_t> emitted_{0};
  std::atomic<int64_t> dropped_{0};
  std::atomic<int64_t> written_{0};
  // Registry counters mirroring the atomics (names in
  // docs/OBSERVABILITY.md); pointers are process-lifetime stable.
  Counter* emitted_total_;
  Counter* dropped_total_;
  Counter* written_total_;
  Counter* bytes_total_;
  Mutex mutex_{"EventLog.mutex"};
  std::FILE* file_ GUARDED_BY(mutex_) = nullptr;
  std::thread drainer_ GUARDED_BY(mutex_);
};

/// One captured slow request: the wide-event summary plus the full
/// span tree.
struct SlowQueryRecord {
  uint64_t trace_id = 0;
  const char* op = "";
  std::string method;
  int64_t start_nanos = 0;
  int64_t duration_nanos = 0;
  int64_t threshold_nanos = 0;
  int64_t box_volume = 0;
  std::vector<CollectedSpan> spans;  // parent-indexed tree, root first
};

/// Bounded log of the most recent slow queries. Capturing is armed by
/// a nonzero threshold; RequestScope records into it when a request's
/// latency reaches the threshold.
class SlowQueryLog {
 public:
  static constexpr int64_t kDefaultCapacity = 64;

  explicit SlowQueryLog(int64_t capacity = kDefaultCapacity);
  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  /// The process-wide log RequestScope records into.
  static SlowQueryLog& Global();

  /// 0 disables capture (the default).
  void set_threshold_nanos(int64_t nanos) {
    threshold_nanos_.store(nanos < 0 ? 0 : nanos,
                           std::memory_order_relaxed);
  }
  int64_t threshold_nanos() const {
    return threshold_nanos_.load(std::memory_order_relaxed);
  }

  void Record(SlowQueryRecord record) EXCLUDES(mutex_);

  /// Retained records, oldest first.
  std::vector<SlowQueryRecord> Snapshot() const EXCLUDES(mutex_);

  /// JSON array of the retained records (the /debug/slow payload).
  std::string RenderJson() const;

  int64_t total_recorded() const EXCLUDES(mutex_);
  void Clear() EXCLUDES(mutex_);

 private:
  const int64_t capacity_;
  std::atomic<int64_t> threshold_nanos_{0};
  Counter* slow_queries_total_;
  mutable Mutex mutex_{"SlowQueryLog.mutex"};
  std::deque<SlowQueryRecord> records_ GUARDED_BY(mutex_);
  int64_t total_ GUARDED_BY(mutex_) = 0;
};

/// Per-request RAII bracket created by instrumented entry points. On
/// construction it decides what this request needs: a wide event
/// (event log active), a span tree (slow-query threshold armed), or
/// nothing (both off, or RPS_OBS_OFF) -- the nothing case is two
/// relaxed loads and no further work. Fill in request facts through
/// the setters as they become known; emission happens on destruction.
class RequestScope {
 public:
  RequestScope(WideEventKind kind, const char* op, std::string_view method);
  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;
  ~RequestScope();

  void set_box_volume(int64_t cells) { event_.box_volume = cells; }
  void set_cells(int64_t primary, int64_t aux) {
    event_.primary_cells = primary;
    event_.aux_cells = aux;
  }
  void add_pool(int64_t hits, int64_t misses) {
    event_.pool_hits += hits;
    event_.pool_misses += misses;
  }
  void add_wal_bytes(int64_t bytes) { event_.wal_bytes += bytes; }
  void set_ok(bool ok) { event_.ok = ok; }

  /// 0 when the request is not being recorded.
  uint64_t trace_id() const { return event_.trace_id; }

 private:
  WideEvent event_;
  Stopwatch watch_;
  bool emit_ = false;     // wide event wanted
  bool collect_ = false;  // span tree wanted
  std::optional<SpanCollector> collector_;
};

}  // namespace rps::obs

#endif  // RPS_OBS_EVENT_LOG_H_
