// CRC-32 (IEEE 802.3 polynomial, reflected) for snapshot integrity
// checking.

#ifndef RPS_UTIL_CRC32_H_
#define RPS_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace rps {

/// Incrementally updatable CRC-32. Start from kCrc32Init, feed bytes,
/// read value().
class Crc32 {
 public:
  Crc32() = default;

  void Update(const void* data, size_t size);

  /// Final checksum of all bytes fed so far.
  uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

  /// One-shot convenience.
  static uint32_t Of(const void* data, size_t size) {
    Crc32 crc;
    crc.Update(data, size);
    return crc.value();
  }

 private:
  uint32_t state_ = 0xFFFFFFFFu;
};

}  // namespace rps

#endif  // RPS_UTIL_CRC32_H_
