#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace rps {

namespace {

// True while the current thread is executing a pool task or a
// ParallelFor body; nested ParallelFor calls observe it and run
// inline instead of re-entering the pool.
thread_local bool t_inside_pool_work = false;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  RPS_CHECK_MSG(num_threads >= 0, "thread pool size must be >= 0");
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  tasks_total_ = &registry.GetCounter("rps_pool_tasks_total");
  queue_depth_ = &registry.GetGauge("rps_pool_queue_depth");
  task_seconds_ = &registry.GetHistogram("rps_pool_task_seconds");
  // Usable parallelism, not worker-thread count: ParallelFor callers
  // claim chunks too, so a pool with 0 workers still computes on one
  // thread (and reports 1 here, e.g. on single-core hosts).
  registry.GetGauge("rps_pool_threads")
      .Set(static_cast<double>(num_threads + 1));
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mutex_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
  // Tasks still queued at destruction run on the destroying thread so
  // Submit keeps its "will eventually run" contract.
  while (RunOnePendingTask()) {
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  RPS_CHECK_MSG(task != nullptr, "cannot submit an empty task");
  size_t depth;
  {
    MutexLock lock(&mutex_);
    RPS_CHECK_MSG(!shutting_down_, "submit on a shutting-down pool");
    queue_.push_back(std::move(task));
    depth = queue_.size();
  }
  tasks_total_->Increment();
  queue_depth_->Set(static_cast<double>(depth));
  work_available_.NotifyOne();
}

bool ThreadPool::RunOnePendingTask() {
  std::function<void()> task;
  {
    MutexLock lock(&mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
    queue_depth_->Set(static_cast<double>(queue_.size()));
  }
  const Stopwatch watch;
  const bool was_inside = t_inside_pool_work;
  t_inside_pool_work = true;
  task();
  t_inside_pool_work = was_inside;
  task_seconds_->ObserveNanos(watch.ElapsedNanos());
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mutex_);
      // Explicit predicate loop (not a lambda) so the thread-safety
      // analysis sees the guarded reads under the held lock.
      while (!shutting_down_ && queue_.empty()) work_available_.Wait(mutex_);
      if (queue_.empty()) return;  // shutting down, queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_->Set(static_cast<double>(queue_.size()));
    }
    const Stopwatch watch;
    t_inside_pool_work = true;
    task();
    t_inside_pool_work = false;
    task_seconds_->ObserveNanos(watch.ElapsedNanos());
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& body) {
  if (begin >= end) return;
  grain = std::max<int64_t>(1, grain);
  const int64_t range = end - begin;
  // Serial fast paths: one chunk, no workers, or already inside pool
  // work (running inline keeps workers non-blocking, which is what
  // makes nested parallel builds deadlock-free).
  if (range <= grain || workers_.empty() || t_inside_pool_work) {
    const bool was_inside = t_inside_pool_work;
    t_inside_pool_work = true;
    const Stopwatch watch;
    body(begin, end);
    t_inside_pool_work = was_inside;
    // Meter serial fast-path work like any other pool task -- unless
    // already inside pool work, where the enclosing task's timing
    // covers it (avoids double counting).
    if (!was_inside) {
      tasks_total_->Increment();
      task_seconds_->ObserveNanos(watch.ElapsedNanos());
    }
    return;
  }

  struct SharedState {
    std::atomic<int64_t> next;
    int64_t end;
    int64_t grain;
    const std::function<void(int64_t, int64_t)>* body;
    Mutex mu{"ThreadPool.ParallelFor.mu"};
    CondVar done_cv;
    int active_helpers GUARDED_BY(mu) = 0;
  };
  auto state = std::make_shared<SharedState>();
  state->next.store(begin, std::memory_order_relaxed);
  state->end = end;
  state->grain = grain;
  state->body = &body;

  auto run_chunks = [](SharedState& s) {
    for (;;) {
      const int64_t lo = s.next.fetch_add(s.grain, std::memory_order_relaxed);
      if (lo >= s.end) return;
      (*s.body)(lo, std::min(lo + s.grain, s.end));
    }
  };

  const int64_t num_chunks = (range + grain - 1) / grain;
  const int helpers = static_cast<int>(std::min<int64_t>(
      static_cast<int64_t>(workers_.size()), num_chunks - 1));
  {
    MutexLock lock(&state->mu);
    state->active_helpers = helpers;
  }
  for (int i = 0; i < helpers; ++i) {
    Submit([state, run_chunks] {
      run_chunks(*state);
      {
        MutexLock lock(&state->mu);
        --state->active_helpers;
      }
      state->done_cv.NotifyAll();
    });
  }

  // The caller claims chunks too, then waits for the helpers it
  // enlisted. `body` lives on this frame, so the wait must not return
  // before every helper has finished with it. The caller's share is
  // metered like a task (helpers meter theirs in WorkerLoop).
  t_inside_pool_work = true;
  const Stopwatch watch;
  run_chunks(*state);
  t_inside_pool_work = false;
  tasks_total_->Increment();
  task_seconds_->ObserveNanos(watch.ElapsedNanos());
  MutexLock lock(&state->mu);
  while (state->active_helpers != 0) state->done_cv.Wait(state->mu);
}

int ThreadPool::DefaultThreads() {
  if (const char* env = std::getenv("RPS_THREADS")) {
    char* parse_end = nullptr;
    const long parsed = std::strtol(env, &parse_end, 10);
    if (parse_end != env && *parse_end == '\0' && parsed >= 1) {
      return static_cast<int>(std::min<long>(parsed, 256));
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool& ThreadPool::Global() {
  // N usable threads = the caller plus N-1 pool workers.
  static ThreadPool pool(DefaultThreads() - 1);
  return pool;
}

}  // namespace rps
