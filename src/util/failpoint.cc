#include "util/failpoint.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "obs/metrics.h"

namespace rps::fail {
namespace {

// SplitMix64 step: small, seedable, and independent from util/random
// so arming a probabilistic failpoint never perturbs workload RNG
// streams.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D4A919F38BCE75ull;
  return z ^ (z >> 31);
}

Result<int64_t> ParsePolicyInt(const std::string& text) {
  if (text.empty()) return Status::InvalidArgument("empty policy argument");
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || value < 1) {
    return Status::InvalidArgument("bad policy argument '" + text + "'");
  }
  return static_cast<int64_t>(value);
}

}  // namespace

Result<TriggerPolicy> TriggerPolicy::Parse(const std::string& text) {
  if (text == "off") return TriggerPolicy::Off();
  if (text == "once") return TriggerPolicy::Once();
  if (text == "always") return TriggerPolicy::Always();
  const size_t open = text.find('(');
  if (open == std::string::npos || text.back() != ')') {
    return Status::InvalidArgument("bad failpoint policy '" + text + "'");
  }
  const std::string head = text.substr(0, open);
  const std::string args = text.substr(open + 1, text.size() - open - 2);
  if (head == "every") {
    RPS_ASSIGN_OR_RETURN(const int64_t n, ParsePolicyInt(args));
    return TriggerPolicy::EveryNth(n);
  }
  if (head == "after") {
    RPS_ASSIGN_OR_RETURN(const int64_t n, ParsePolicyInt(args));
    return TriggerPolicy::AfterN(n);
  }
  if (head == "prob") {
    const size_t comma = args.find(',');
    const std::string p_text =
        comma == std::string::npos ? args : args.substr(0, comma);
    char* end = nullptr;
    const double p = std::strtod(p_text.c_str(), &end);
    if (p_text.empty() || end != p_text.c_str() + p_text.size() || p < 0.0 ||
        p > 1.0) {
      return Status::InvalidArgument("bad probability '" + p_text + "'");
    }
    uint64_t seed = 1;
    if (comma != std::string::npos) {
      RPS_ASSIGN_OR_RETURN(const int64_t parsed,
                           ParsePolicyInt(args.substr(comma + 1)));
      seed = static_cast<uint64_t>(parsed);
    }
    return TriggerPolicy::Probability(p, seed);
  }
  return Status::InvalidArgument("unknown failpoint policy '" + text + "'");
}

Failpoint::Failpoint(std::string name) : name_(std::move(name)) {}

void Failpoint::Arm(const TriggerPolicy& policy) {
  MutexLock lock(&mutex_);
  policy_ = policy;
  rng_state_ = policy.seed;
  armed_.store(policy.kind != TriggerKind::kOff, std::memory_order_relaxed);
}

void Failpoint::Disarm() {
  MutexLock lock(&mutex_);
  policy_ = TriggerPolicy::Off();
  armed_.store(false, std::memory_order_relaxed);
}

bool Failpoint::Fires() {
  if (!armed_.load(std::memory_order_relaxed)) return false;
  bool fired = false;
  {
    MutexLock lock(&mutex_);
    if (policy_.kind == TriggerKind::kOff) return false;
    ++evaluations_;
    switch (policy_.kind) {
      case TriggerKind::kOff:
        break;
      case TriggerKind::kOnce:
        fired = true;
        policy_ = TriggerPolicy::Off();
        armed_.store(false, std::memory_order_relaxed);
        break;
      case TriggerKind::kAlways:
        fired = true;
        break;
      case TriggerKind::kEveryNth:
        fired = evaluations_ % policy_.n == 0;
        break;
      case TriggerKind::kAfterN:
        fired = evaluations_ > policy_.n;
        break;
      case TriggerKind::kProbability:
        fired = static_cast<double>(SplitMix64(&rng_state_) >> 11) *
                    0x1.0p-53 <
                policy_.p;
        break;
    }
    if (fired) ++fires_;
  }
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  registry.GetCounter("rps_failpoint_evaluations_total", {{"site", name_}})
      .Increment();
  if (fired) {
    registry.GetCounter("rps_failpoint_fires_total", {{"site", name_}})
        .Increment();
  }
  return fired;
}

int64_t Failpoint::evaluations() const {
  MutexLock lock(&mutex_);
  return evaluations_;
}

int64_t Failpoint::fires() const {
  MutexLock lock(&mutex_);
  return fires_;
}

FailpointRegistry& FailpointRegistry::Global() {
  static FailpointRegistry* const registry = [] {
    auto* r = new FailpointRegistry();
    if (const char* spec = std::getenv("RPS_FAILPOINTS");
        spec != nullptr && spec[0] != '\0') {
      const Status status = r->ArmFromSpec(spec);
      if (!status.ok()) {
        std::fprintf(stderr, "RPS_FAILPOINTS ignored: %s\n",
                     status.ToString().c_str());
      }
    }
    return r;
  }();
  return *registry;
}

Failpoint& FailpointRegistry::Get(const std::string& name) {
  MutexLock lock(&mutex_);
  auto it = sites_.find(name);
  if (it == sites_.end()) {
    it = sites_.emplace(name, std::make_unique<Failpoint>(name)).first;
  }
  return *it->second;
}

Status FailpointRegistry::ArmFromSpec(const std::string& spec) {
  size_t start = 0;
  while (start < spec.size()) {
    size_t end = spec.find_first_of(",;", start);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(start, end - start);
    start = end + 1;
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("failpoint spec item needs name=policy: '" +
                                     item + "'");
    }
    RPS_ASSIGN_OR_RETURN(const TriggerPolicy policy,
                         TriggerPolicy::Parse(item.substr(eq + 1)));
    Get(item.substr(0, eq)).Arm(policy);
  }
  return Status::Ok();
}

void FailpointRegistry::DisarmAll() {
  MutexLock lock(&mutex_);
  for (auto& [name, site] : sites_) site->Disarm();
}

std::vector<std::string> FailpointRegistry::ArmedNames() const {
  MutexLock lock(&mutex_);
  std::vector<std::string> names;
  for (const auto& [name, site] : sites_) {
    if (site->armed()) names.push_back(name);
  }
  return names;
}

}  // namespace rps::fail
