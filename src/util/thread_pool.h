// Reusable worker pool with a blocking ParallelFor primitive.
//
// The core structures are CPU-bound array transforms (box-local
// prefix scans, overlay scatters, face-cube aggregation) whose work
// items are embarrassingly independent, so one process-wide pool is
// shared by every builder instead of spawning threads per call. Key
// properties:
//
//   * ParallelFor partitions [begin, end) into grain-sized chunks
//     that helpers claim dynamically; the calling thread always
//     participates, so progress never depends on a worker being
//     free (a pool of zero workers degrades to a serial loop).
//   * Nested ParallelFor calls from inside a pool task run inline on
//     the calling worker. Workers therefore never block on the pool,
//     which makes composed parallel builds (e.g. HierarchicalRps
//     faces, each building an inner RelativePrefixSum) deadlock-free
//     by construction.
//   * Chunks are disjoint and every output cell is written by exactly
//     one chunk, so parallel results are bit-identical to serial ones
//     for any value type.
//
// Pool sizing: ThreadPool::Global() reads the RPS_THREADS environment
// variable once (0/unset = hardware concurrency, 1 = no workers,
// everything inline). Observability: submissions, queue depth and
// per-task busy time are exported through obs::MetricRegistry as
// rps_pool_tasks_total, rps_pool_queue_depth, rps_pool_task_seconds
// and rps_pool_threads. The gauge counts usable threads (workers plus
// the caller, which claims ParallelFor chunks itself), and ParallelFor
// meters its serial fast path and the caller's chunk share as tasks,
// so the metrics stay meaningful even with zero workers.

#ifndef RPS_UTIL_THREAD_POOL_H_
#define RPS_UTIL_THREAD_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/annotations.h"
#include "util/mutex.h"

namespace rps {

namespace obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace obs

class ThreadPool {
 public:
  /// A pool with `num_threads` workers (>= 0; 0 means every task and
  /// ParallelFor chunk runs inline on the calling thread).
  explicit ThreadPool(int num_threads);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one fire-and-forget task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Calls `body(lo, hi)` over disjoint chunks covering [begin, end),
  /// each at most `grain` long, and returns when all chunks ran. The
  /// calling thread participates; helpers are enlisted only when the
  /// range spans more than one chunk. Chunk boundaries depend only on
  /// (begin, end, grain), never on thread count, so any writes the
  /// body makes to chunk-owned data are deterministic.
  ///
  /// Reentrancy: when called from inside a pool task (or a nested
  /// ParallelFor), runs body(begin, end) inline.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& body);

  /// The process-wide pool, sized by RPS_THREADS at first use.
  static ThreadPool& Global();

  /// Worker count Global() uses: RPS_THREADS when set and valid
  /// (clamped to [1, 256]; N threads means N-1 pool workers since the
  /// caller participates), else std::thread::hardware_concurrency().
  static int DefaultThreads();

 private:
  void WorkerLoop();
  /// Pops and runs one queued task if any; returns false when the
  /// queue was empty.
  bool RunOnePendingTask();

  Mutex mutex_{"ThreadPool.mutex"};
  CondVar work_available_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mutex_);
  bool shutting_down_ GUARDED_BY(mutex_) = false;
  // Written only by the constructor, joined by the destructor; never
  // mutated while workers run, so it needs no guard.
  std::vector<std::thread> workers_;

  // Registry-owned metrics (stable pointers for the pool's lifetime).
  obs::Counter* tasks_total_;
  obs::Gauge* queue_depth_;
  obs::Histogram* task_seconds_;
};

}  // namespace rps

#endif  // RPS_UTIL_THREAD_POOL_H_
