// Capability-annotated mutex wrappers with a debug lock-order checker.
//
// This header is the ONLY place in the repo allowed to name the raw
// standard-library synchronization primitives (enforced by
// scripts/check_guards.py). Everything else uses these wrappers:
//
//   Mutex        annotated exclusive lock (wraps std::mutex)
//   SharedMutex  annotated reader/writer lock (wraps std::shared_mutex)
//   MutexLock    RAII exclusive guard for Mutex
//   ReaderLock   RAII shared guard for SharedMutex
//   WriterLock   RAII exclusive guard for SharedMutex
//   CondVar      condition variable bound to Mutex
//
// Two enforcement layers ride on the wrappers:
//
//   1. Compile time: the annotations from util/annotations.h let
//      Clang's -Wthread-safety prove that every GUARDED_BY field is
//      only touched with its mutex held (the `tsa` CMake preset turns
//      the proof into -Werror).
//   2. Debug runtime: when RPS_LOCK_ORDER_CHECK is 1 (any !NDEBUG
//      build, which includes the asan-ubsan and tsan presets), every
//      acquisition is recorded in a per-thread held-locks list and a
//      process-wide lock-order graph. Acquiring A while holding B
//      inserts the edge B->A; if A can already reach B through
//      recorded edges, the two acquisition orders can deadlock, and
//      the process aborts printing BOTH stacks -- the current one and
//      the stack captured when the reverse edge was first recorded.
//      Release builds compile all of this out: a release Mutex is a
//      std::mutex plus a name pointer.
//
// The checker's bookkeeping uses the raw std::mutex (never a wrapped
// Mutex), so it can never recurse into itself, and all counters and
// containers are ordinary data under that lock -- the checker is
// TSan-clean by construction.

#ifndef RPS_UTIL_MUTEX_H_
#define RPS_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/annotations.h"

#if !defined(NDEBUG) && !defined(RPS_NO_LOCK_ORDER_CHECK)
#define RPS_LOCK_ORDER_CHECK 1
#else
#define RPS_LOCK_ORDER_CHECK 0
#endif

#if RPS_LOCK_ORDER_CHECK

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

#if defined(__has_include)
#if __has_include(<execinfo.h>)
#define RPS_LOCK_ORDER_HAVE_BACKTRACE 1
#include <execinfo.h>
#endif
#endif
#ifndef RPS_LOCK_ORDER_HAVE_BACKTRACE
#define RPS_LOCK_ORDER_HAVE_BACKTRACE 0
#endif

namespace rps::lockorder {

inline constexpr int kMaxStackFrames = 24;
inline constexpr int kMaxHeldLocks = 32;

/// A backtrace captured when a lock-order edge was first recorded.
struct EdgeStack {
  void* frames[kMaxStackFrames];
  int depth = 0;
};

/// Graph node: one live mutex, with edges to every mutex that has
/// been acquired while this one was held.
struct Node {
  const char* name = "?";
  std::unordered_map<uint64_t, EdgeStack> successors;
};

/// The process-wide lock-order graph. Guarded by its own raw
/// std::mutex so checker bookkeeping never feeds back into the
/// checker. Leaked on purpose (like the metric/failpoint registries)
/// so static destructors can still lock wrapped mutexes.
struct Graph {
  std::mutex mu;
  std::unordered_map<uint64_t, Node> nodes;
};

inline Graph& GlobalGraph() {
  static Graph* const graph = new Graph();
  return *graph;
}

/// Per-thread list of currently held wrapped locks. Deliberately a
/// trivially-destructible POD so it stays valid even when static
/// destructors run after thread_local cleanup.
struct HeldList {
  struct Entry {
    uint64_t id;
    const char* name;
  };
  Entry entries[kMaxHeldLocks];
  int depth;
};

inline HeldList& HeldLocks() {
  thread_local HeldList held{{}, 0};
  return held;
}

inline uint64_t NewLockId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

inline int CaptureStack(void** frames, int max_frames) {
#if RPS_LOCK_ORDER_HAVE_BACKTRACE
  return backtrace(frames, max_frames);
#else
  (void)frames;
  (void)max_frames;
  return 0;
#endif
}

inline void PrintStack(void* const* frames, int depth) {
#if RPS_LOCK_ORDER_HAVE_BACKTRACE
  if (depth > 0) {
    backtrace_symbols_fd(frames, depth, /*fd=*/2);
    return;
  }
#endif
  (void)frames;
  (void)depth;
  std::fprintf(stderr, "  (no stack available on this platform)\n");
}

/// Depth-first search: is `target` reachable from `from`? On success
/// returns the stack of the FIRST edge of the discovered path (the
/// acquisition that established the reverse order). Caller holds
/// Graph::mu.
inline const EdgeStack* FindPath(const Graph& graph, uint64_t from,
                                 uint64_t target,
                                 std::unordered_set<uint64_t>& visited) {
  const auto it = graph.nodes.find(from);
  if (it == graph.nodes.end()) return nullptr;
  for (const auto& [succ_id, stack] : it->second.successors) {
    if (succ_id == target) return &stack;
    if (visited.insert(succ_id).second &&
        FindPath(graph, succ_id, target, visited) != nullptr) {
      return &stack;
    }
  }
  return nullptr;
}

[[noreturn]] inline void AbortOnCycle(const char* acquiring_name,
                                      uint64_t acquiring_id,
                                      const char* held_name, uint64_t held_id,
                                      const EdgeStack& reverse_stack) {
  std::fprintf(stderr,
               "FATAL: lock order cycle detected: acquiring mutex '%s' (#%llu)"
               " while holding '%s' (#%llu), but '%s' has previously been"
               " held while acquiring '%s'.\n",
               acquiring_name,
               static_cast<unsigned long long>(acquiring_id), held_name,
               static_cast<unsigned long long>(held_id), acquiring_name,
               held_name);
  std::fprintf(stderr, "--- current acquisition stack ('%s' -> '%s'):\n",
               held_name, acquiring_name);
  void* current[kMaxStackFrames];
  const int current_depth = CaptureStack(current, kMaxStackFrames);
  PrintStack(current, current_depth);
  std::fprintf(stderr, "--- previously recorded acquisition stack"
                       " ('%s' -> ...):\n",
               acquiring_name);
  PrintStack(reverse_stack.frames, reverse_stack.depth);
  std::abort();
}

/// Called before blocking on a lock: records the edge (top-of-held ->
/// id) and aborts if the reverse order is already on file.
inline void OnLockAttempt(uint64_t id, const char* name) {
  const HeldList& held = HeldLocks();
  if (held.depth <= 0 || held.depth > kMaxHeldLocks) return;
  const HeldList::Entry& prev = held.entries[held.depth - 1];
  if (prev.id == id) return;  // relocking self deadlocks regardless of order
  Graph& graph = GlobalGraph();
  std::lock_guard<std::mutex> graph_lock(graph.mu);
  Node& prev_node = graph.nodes[prev.id];
  prev_node.name = prev.name;
  if (prev_node.successors.find(id) != prev_node.successors.end()) {
    return;  // known-consistent order
  }
  std::unordered_set<uint64_t> visited;
  if (const EdgeStack* reverse = FindPath(graph, id, prev.id, visited)) {
    AbortOnCycle(name, id, prev.name, prev.id, *reverse);
  }
  graph.nodes[id].name = name;  // ensure the target node carries a name
  EdgeStack& stack = graph.nodes[prev.id].successors[id];
  stack.depth = CaptureStack(stack.frames, kMaxStackFrames);
}

inline void OnAcquired(uint64_t id, const char* name) {
  HeldList& held = HeldLocks();
  if (held.depth < kMaxHeldLocks) {
    held.entries[held.depth] = {id, name};
  }
  ++held.depth;  // beyond kMaxHeldLocks: counted but not recorded
}

inline void OnReleased(uint64_t id) {
  HeldList& held = HeldLocks();
  if (held.depth > kMaxHeldLocks) {
    --held.depth;  // unrecorded overflow entry
    return;
  }
  // Locks may be released out of LIFO order; drop the newest match.
  for (int i = held.depth - 1; i >= 0; --i) {
    if (held.entries[i].id == id) {
      for (int j = i; j + 1 < held.depth; ++j) {
        held.entries[j] = held.entries[j + 1];
      }
      --held.depth;
      return;
    }
  }
}

/// Forgets a destroyed mutex so ids of short-lived mutexes (for
/// example ParallelFor's per-call state) do not grow the graph
/// without bound.
inline void OnDestroyed(uint64_t id) {
  Graph& graph = GlobalGraph();
  std::lock_guard<std::mutex> graph_lock(graph.mu);
  graph.nodes.erase(id);
  for (auto& [node_id, node] : graph.nodes) {
    node.successors.erase(id);
  }
}

}  // namespace rps::lockorder

#endif  // RPS_LOCK_ORDER_CHECK

namespace rps {

/// Annotated exclusive mutex. Prefer the MutexLock RAII guard over
/// calling Lock/Unlock directly.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  /// `name` must have static storage duration (a string literal); it
  /// appears in lock-order-cycle reports.
  explicit Mutex(const char* name) : name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;
#if RPS_LOCK_ORDER_CHECK
  ~Mutex() { lockorder::OnDestroyed(id_); }
#else
  ~Mutex() = default;
#endif

  void Lock() ACQUIRE() {
#if RPS_LOCK_ORDER_CHECK
    lockorder::OnLockAttempt(id_, name_);
#endif
    mu_.lock();
#if RPS_LOCK_ORDER_CHECK
    lockorder::OnAcquired(id_, name_);
#endif
  }

  void Unlock() RELEASE() {
    mu_.unlock();
#if RPS_LOCK_ORDER_CHECK
    lockorder::OnReleased(id_);
#endif
  }

  bool TryLock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
#if RPS_LOCK_ORDER_CHECK
    lockorder::OnAcquired(id_, name_);
#endif
    return true;
  }

  const char* name() const { return name_; }

  // BasicLockable spellings so CondVar's condition_variable_any can
  // release/reacquire through the tracked path.
  void lock() ACQUIRE() { Lock(); }
  void unlock() RELEASE() { Unlock(); }

 private:
  std::mutex mu_;
  const char* name_ = "Mutex";
#if RPS_LOCK_ORDER_CHECK
  const uint64_t id_ = lockorder::NewLockId();
#endif
};

/// Annotated reader/writer mutex. Prefer ReaderLock / WriterLock.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(const char* name) : name_(name) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;
#if RPS_LOCK_ORDER_CHECK
  ~SharedMutex() { lockorder::OnDestroyed(id_); }
#else
  ~SharedMutex() = default;
#endif

  void Lock() ACQUIRE() {
#if RPS_LOCK_ORDER_CHECK
    lockorder::OnLockAttempt(id_, name_);
#endif
    mu_.lock();
#if RPS_LOCK_ORDER_CHECK
    lockorder::OnAcquired(id_, name_);
#endif
  }

  void Unlock() RELEASE() {
    mu_.unlock();
#if RPS_LOCK_ORDER_CHECK
    lockorder::OnReleased(id_);
#endif
  }

  /// Shared acquisitions participate in lock-order tracking too: a
  /// reader-then-writer inversion deadlocks exactly like an exclusive
  /// one.
  void LockShared() ACQUIRE_SHARED() {
#if RPS_LOCK_ORDER_CHECK
    lockorder::OnLockAttempt(id_, name_);
#endif
    mu_.lock_shared();
#if RPS_LOCK_ORDER_CHECK
    lockorder::OnAcquired(id_, name_);
#endif
  }

  void UnlockShared() RELEASE_SHARED() {
    mu_.unlock_shared();
#if RPS_LOCK_ORDER_CHECK
    lockorder::OnReleased(id_);
#endif
  }

  const char* name() const { return name_; }

 private:
  std::shared_mutex mu_;
  const char* name_ = "SharedMutex";
#if RPS_LOCK_ORDER_CHECK
  const uint64_t id_ = lockorder::NewLockId();
#endif
};

/// RAII exclusive guard for Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() RELEASE() { mu_->Unlock(); }

 private:
  Mutex* const mu_;
};

/// RAII shared (reader) guard for SharedMutex.
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;
  ~ReaderLock() RELEASE() { mu_->UnlockShared(); }

 private:
  SharedMutex* const mu_;
};

/// RAII exclusive (writer) guard for SharedMutex.
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;
  ~WriterLock() RELEASE() { mu_->Unlock(); }

 private:
  SharedMutex* const mu_;
};

/// Condition variable bound to Mutex. Always wrap Wait in an explicit
/// predicate loop -- the re-check inside the calling function is what
/// keeps the thread-safety analysis able to see the guarded reads:
///
///   MutexLock lock(&mu_);
///   while (queue_.empty() && !shutting_down_) cv_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits, and re-acquires before
  /// returning. The release/reacquire runs through Mutex's tracked
  /// lock()/unlock(), so the lock-order bookkeeping stays exact.
  void Wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  /// Timed wait: returns false when `micros` elapsed without a
  /// notification (the group-commit linger window), true otherwise.
  /// Spurious wakeups return true, so callers re-check their
  /// predicate either way.
  bool WaitFor(Mutex& mu, int64_t micros) REQUIRES(mu) {
    return cv_.wait_for(mu, std::chrono::microseconds(micros)) ==
           std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace rps

#endif  // RPS_UTIL_MUTEX_H_
