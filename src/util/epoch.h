// Epoch-based reclamation with wait-free reader pinning.
//
// The sharded OLAP engine publishes immutable versions behind a single
// atomic pointer; readers must be able to use a version without ever
// blocking a writer (or each other), and writers must know when a
// superseded version can be freed. This header provides the classic
// RCU/epoch scheme (Fraser's epochs; crossbeam's formulation):
//
//   * A global epoch counter G advances one step at a time.
//   * Each reader thread owns one cache-line-sized slot. Pinning
//     writes the observed epoch into the slot and issues one seq_cst
//     fence -- a constant-time, wait-free operation (no CAS, no loop).
//   * Writers retire objects (after unpublishing them with an atomic
//     pointer swap) onto a mutex-guarded list stamped with the epoch
//     at retirement, and periodically try to advance G. Advancing
//     requires every pinned slot to have observed the current epoch.
//   * A retired object is freed once G >= retire_epoch + 2. A reader
//     pinned at epoch e keeps G <= e + 1, so any object eligible for
//     freeing was retired at epoch <= e - 1 -- its unpublishing
//     pointer swap is ordered before the advance to e that the reader
//     observed, hence the reader cannot have loaded it.
//
// Memory-order contract with users: publish new versions with a
// seq_cst exchange (or release store) and load them with acquire
// AFTER pinning. Unpinning is a release store that the advancing
// writer's acquire scan synchronizes with, so every reader access
// happens-before the free -- the scheme is TSan-clean without any
// TSan-specific annotations.
//
// Like src/util/mutex.h, this header is a designated owner of raw
// synchronization primitives (here: std::atomic_thread_fence), which
// scripts/check_guards.py allowlists; everything else must not issue
// raw fences.

#ifndef RPS_UTIL_EPOCH_H_
#define RPS_UTIL_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/annotations.h"
#include "util/check.h"
#include "util/mutex.h"

namespace rps {

namespace obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace obs

namespace epoch_internal {
struct ThreadSlots;
}  // namespace epoch_internal

/// One reclamation domain: a global epoch, a fixed array of reader
/// slots, and a retire list. Use EpochDomain::Global() unless a test
/// needs an isolated domain.
class EpochDomain {
 public:
  /// Upper bound on threads that may pin concurrently. Slots are
  /// claimed on a thread's first pin and released at thread exit.
  static constexpr int kMaxSlots = 256;

  EpochDomain();
  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;
  /// Frees everything still on the retire list (callers must ensure
  /// no thread is pinned). The global domain is leaked and never runs
  /// this.
  ~EpochDomain();

  /// The process-wide domain (leaked, like the metric registry, so
  /// static destructors may still retire into it).
  static EpochDomain& Global();

  /// RAII pin: while alive, no object retired at or after the pinned
  /// epoch is freed. Nests freely (inner guards are no-ops). Pinning
  /// is wait-free: one relaxed load, one seq_cst store, one fence.
  class Guard {
   public:
    explicit Guard(EpochDomain& domain) : domain_(domain) {
      domain_.Pin();
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard() { domain_.Unpin(); }

   private:
    EpochDomain& domain_;
  };

  /// Hands `object` to the domain for deferred destruction. The
  /// caller must already have unpublished it (no new readers can
  /// reach it); it is deleted once every reader that might still hold
  /// it has unpinned. Writer-side only.
  template <typename T>
  void Retire(T* object) {
    RetireRaw(object, [](void* p) { delete static_cast<T*>(p); });
  }
  void RetireRaw(void* object, void (*deleter)(void*));

  /// One reclamation step: attempt to advance the epoch, then free
  /// every retired object whose epoch has been left two steps behind.
  /// Returns the number of objects freed. Cheap when there is nothing
  /// to do; writers call this after publishing.
  int64_t Reclaim();

  /// Runs Reclaim until the retire list is empty or no progress is
  /// possible (a reader is pinned). Destructors and tests use this.
  void Drain();

  /// Current epoch (diagnostics).
  uint64_t CurrentEpoch() const {
    return global_epoch_.load(std::memory_order_relaxed);
  }
  /// Objects awaiting reclamation (diagnostics).
  int64_t RetiredCount() const;
  /// True when the calling thread currently holds a pin.
  bool PinnedByThisThread() const;

  /// One JSON object for /varz: epoch, slots in use, retire backlog.
  std::string VarzJson() const;

 private:
  friend struct epoch_internal::ThreadSlots;

  // Slot encoding: 0 = not pinned, else (epoch << 1) | 1. One cache
  // line per slot so reader pins never false-share.
  struct alignas(64) Slot {
    std::atomic<uint64_t> state{0};
    std::atomic<bool> claimed{false};
  };

  struct Retired {
    void* object;
    void (*deleter)(void*);
    uint64_t epoch;
  };

  void Pin();
  void Unpin();
  /// Claims (first use) and returns this thread's slot in this domain.
  Slot* ThreadSlot();
  /// Returns a slot to the free pool (thread-exit cleanup).
  static void ReleaseSlot(void* opaque_slot);
  /// Advances the global epoch if every pinned slot has observed it.
  bool TryAdvance();

  std::atomic<uint64_t> global_epoch_{1};
  Slot slots_[kMaxSlots];

  mutable Mutex retire_mu_{"EpochDomain.retire_mu"};
  std::vector<Retired> retired_ GUARDED_BY(retire_mu_);

  // Registry-owned observability (stable pointers; the global domain
  // lives for the process).
  obs::Counter* retired_total_;
  obs::Counter* reclaimed_total_;
  obs::Counter* advance_total_;
  obs::Counter* advance_blocked_total_;
  obs::Gauge* retired_objects_;
  obs::Gauge* epoch_gauge_;
  // Distribution of how many epochs a retired object waited before it
  // was freed (the "epoch lag"): values are epoch counts, not nanos,
  // despite the histogram's nano-named observe method.
  obs::Histogram* reclaim_lag_epochs_;
};

}  // namespace rps

#endif  // RPS_UTIL_EPOCH_H_
