// Named, process-global fault sites for crash-safety testing.
//
// A failpoint is a registered site in production code that a test (or
// the RPS_FAILPOINTS environment variable) can arm with a trigger
// policy; the code under test asks `Fires()` at the site and takes
// the failure path when it returns true. Disarmed sites cost one
// relaxed atomic load, so the hooks stay compiled into release
// binaries.
//
// Trigger policies (spec syntax in parentheses):
//   off                 never fires (the default)
//   once        (once)  fires on the first evaluation, then disarms
//   always     (always) fires on every evaluation
//   every Nth (every(N)) fires on evaluations N, 2N, 3N, ...
//   after N   (after(N)) fires on every evaluation past the first N
//   probabilistic (prob(P) or prob(P,SEED)) fires with probability P
//                       per evaluation, from a seeded deterministic RNG
//
// Activation:
//   - API: FailpointRegistry::Global().Get("io.wal.crash").Arm(policy)
//     or ArmFromSpec("io.wal.crash=once,io.snapshot.enospc=every(3)").
//   - Environment: RPS_FAILPOINTS holds the same spec string and is
//     applied the first time the global registry is touched.
//
// Every evaluation and fire is exported through obs::MetricRegistry
// as rps_failpoint_{evaluations,fires}_total{site="<name>"} (armed
// sites only; disarmed evaluations are not counted).

#ifndef RPS_UTIL_FAILPOINT_H_
#define RPS_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/annotations.h"
#include "util/mutex.h"
#include "util/status.h"

namespace rps::fail {

/// When an armed failpoint fires.
enum class TriggerKind {
  kOff = 0,
  kOnce,
  kAlways,
  kEveryNth,
  kAfterN,
  kProbability,
};

struct TriggerPolicy {
  TriggerKind kind = TriggerKind::kOff;
  int64_t n = 0;        // kEveryNth / kAfterN parameter
  double p = 0.0;       // kProbability parameter
  uint64_t seed = 1;    // kProbability RNG seed

  static TriggerPolicy Off() { return {}; }
  static TriggerPolicy Once() { return {TriggerKind::kOnce, 0, 0.0, 1}; }
  static TriggerPolicy Always() { return {TriggerKind::kAlways, 0, 0.0, 1}; }
  static TriggerPolicy EveryNth(int64_t n) {
    return {TriggerKind::kEveryNth, n, 0.0, 1};
  }
  static TriggerPolicy AfterN(int64_t n) {
    return {TriggerKind::kAfterN, n, 0.0, 1};
  }
  static TriggerPolicy Probability(double p, uint64_t seed = 1) {
    return {TriggerKind::kProbability, 0, p, seed};
  }

  /// Parses one policy spec ("once", "every(3)", "after(10)",
  /// "prob(0.25,42)", "off").
  static Result<TriggerPolicy> Parse(const std::string& text);
};

/// One named fault site. References returned by the registry stay
/// valid for the registry's lifetime, so I/O wrappers cache them.
class Failpoint {
 public:
  explicit Failpoint(std::string name);
  Failpoint(const Failpoint&) = delete;
  Failpoint& operator=(const Failpoint&) = delete;

  const std::string& name() const { return name_; }

  /// True when this site should take its failure path now. Disarmed
  /// sites answer with a single relaxed load.
  bool Fires();

  void Arm(const TriggerPolicy& policy);
  void Disarm();
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Evaluations/fires while armed (since construction).
  int64_t evaluations() const;
  int64_t fires() const;

 private:
  const std::string name_;
  std::atomic<bool> armed_{false};

  mutable Mutex mutex_{"Failpoint.mutex"};
  TriggerPolicy policy_ GUARDED_BY(mutex_);
  int64_t evaluations_ GUARDED_BY(mutex_) = 0;
  int64_t fires_ GUARDED_BY(mutex_) = 0;
  // SplitMix64 state for kProbability.
  uint64_t rng_state_ GUARDED_BY(mutex_) = 0;
};

/// Owns every failpoint by name.
class FailpointRegistry {
 public:
  FailpointRegistry() = default;
  FailpointRegistry(const FailpointRegistry&) = delete;
  FailpointRegistry& operator=(const FailpointRegistry&) = delete;

  /// The process-wide registry. On first use applies the
  /// RPS_FAILPOINTS environment spec, if set.
  static FailpointRegistry& Global();

  /// Returns the site named `name`, creating it (disarmed) on first
  /// use. The reference is stable for the registry's lifetime.
  Failpoint& Get(const std::string& name);

  /// Arms sites from a comma- or semicolon-separated spec string:
  ///   "io.wal.crash=once,io.snapshot.enospc=every(3)"
  Status ArmFromSpec(const std::string& spec);

  /// Disarms every site (their counters survive).
  void DisarmAll();

  /// Names of the currently armed sites, sorted.
  std::vector<std::string> ArmedNames() const;

 private:
  mutable Mutex mutex_{"FailpointRegistry.mutex"};
  std::map<std::string, std::unique_ptr<Failpoint>> sites_ GUARDED_BY(mutex_);
};

}  // namespace rps::fail

#endif  // RPS_UTIL_FAILPOINT_H_
