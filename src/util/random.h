// Deterministic pseudo-random generation for tests, workloads and
// benchmarks.
//
// We implement our own small generator (SplitMix64 seeding a
// xoshiro256**) so that workloads are reproducible across standard
// library implementations; std::mt19937 distributions are not
// bit-stable across vendors.

#ifndef RPS_UTIL_RANDOM_H_
#define RPS_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

namespace rps {

/// xoshiro256** PRNG seeded via SplitMix64. Satisfies the
/// UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed);

  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~uint64_t{0}; }

  uint64_t operator()() { return Next(); }

  /// Next raw 64 random bits.
  uint64_t Next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

 private:
  uint64_t state_[4];
};

/// Samples from a Zipf(s) distribution over {0, 1, ..., n-1} where rank
/// r has probability proportional to 1/(r+1)^s. Precomputes the CDF
/// once; sampling is a binary search. Used to generate skewed cube
/// fills and hotspot update streams.
class ZipfDistribution {
 public:
  /// n >= 1; s >= 0 (s = 0 degenerates to uniform).
  ZipfDistribution(int64_t n, double s);

  int64_t operator()(Rng& rng) const;

  int64_t n() const { return static_cast<int64_t>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
};

}  // namespace rps

#endif  // RPS_UTIL_RANDOM_H_
