#include "util/math.h"

#include <limits>

#include "util/check.h"

namespace rps {

bool MulWouldOverflow(int64_t a, int64_t b) {
  if (a == 0 || b == 0) return false;
  int64_t result;
  return __builtin_mul_overflow(a, b, &result);
}

int64_t IntPow(int64_t base, int exp) {
  RPS_CHECK(exp >= 0);
  int64_t result = 1;
  for (int i = 0; i < exp; ++i) {
    RPS_CHECK_MSG(!MulWouldOverflow(result, base), "IntPow overflow");
    result *= base;
  }
  return result;
}

int64_t CeilDiv(int64_t a, int64_t b) {
  RPS_CHECK(a >= 0);
  RPS_CHECK(b > 0);
  return (a + b - 1) / b;
}

int64_t ISqrt(int64_t x) {
  RPS_CHECK(x >= 0);
  if (x < 2) return x;
  // Newton's method on integers; converges in a few dozen iterations.
  int64_t guess = x;
  int64_t next = (guess + 1) / 2;
  while (next < guess) {
    guess = next;
    next = (guess + x / guess) / 2;
  }
  // guess = floor(sqrt(x)) up to off-by-one; correct exactly.
  // Division-based comparisons avoid overflow near sqrt(INT64_MAX).
  while (guess > 0 && guess > x / guess) --guess;
  while (guess + 1 <= x / (guess + 1)) ++guess;
  return guess;
}

int64_t NearestSqrt(int64_t x) {
  RPS_CHECK(x >= 1);
  int64_t lo = ISqrt(x);
  int64_t hi = lo + 1;
  // Compare |x - lo^2| vs |hi^2 - x| without overflow concerns (x is a
  // cube extent, far below the int64 square root bound after ISqrt).
  int64_t down = x - lo * lo;
  int64_t up = hi * hi - x;
  return (down <= up) ? lo : hi;
}

}  // namespace rps
