#include "util/random.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace rps {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97f4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  RPS_CHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<int64_t>(Next());
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = (~uint64_t{0}) - (~uint64_t{0}) % span;
  uint64_t r = Next();
  while (r >= limit) r = Next();
  return lo + static_cast<int64_t>(r % span);
}

double Rng::UniformDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return UniformDouble() < p;
}

ZipfDistribution::ZipfDistribution(int64_t n, double s) {
  RPS_CHECK(n >= 1);
  RPS_CHECK(s >= 0);
  cdf_.resize(static_cast<size_t>(n));
  double total = 0;
  for (int64_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf_[static_cast<size_t>(r)] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

int64_t ZipfDistribution::operator()(Rng& rng) const {
  const double u = rng.UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<int64_t>(it - cdf_.begin());
}

}  // namespace rps
