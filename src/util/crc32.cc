#include "util/crc32.h"

namespace rps {
namespace {

// Table generated at first use from the reflected polynomial
// 0xEDB88320 (trivially destructible static storage: plain array).
struct Crc32Table {
  uint32_t entry[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      entry[i] = c;
    }
  }
};

const uint32_t* Table() {
  static const Crc32Table table;
  return table.entry;
}

}  // namespace

void Crc32::Update(const void* data, size_t size) {
  const uint32_t* table = Table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t c = state_;
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  state_ = c;
}

}  // namespace rps
