// Clang thread-safety (capability) analysis annotations.
//
// These macros attach Clang's `-Wthread-safety` attributes to types,
// members and functions so the locking discipline of the concurrent
// layers is proven at compile time: a field declared GUARDED_BY(mu)
// cannot be read or written unless the compiler can see that `mu` is
// held, and a function declared REQUIRES(mu) cannot be called without
// it. On non-Clang compilers (the dev container builds with GCC)
// every macro expands to nothing, so the annotations are free
// documentation there and a hard contract under the `tsa` CMake
// preset (clang + -Werror=thread-safety -Werror=thread-safety-beta).
//
// Cheat sheet (see docs/TOOLING.md "Capability annotations & locking
// rules" for the full guide):
//
//   GUARDED_BY(mu)    on a data member: all accesses need `mu` held
//   REQUIRES(mu)      on a function: caller must already hold `mu`
//   EXCLUDES(mu)      on a function: caller must NOT hold `mu`
//                     (the function acquires it itself)
//   ACQUIRE/RELEASE   on lock/unlock-shaped functions
//   SCOPED_CAPABILITY on RAII guard classes (MutexLock et al.)
//
// The vocabulary and spellings follow the Clang documentation and
// Abseil's thread_annotations.h so diagnostics read like the upstream
// examples.

#ifndef RPS_UTIL_ANNOTATIONS_H_
#define RPS_UTIL_ANNOTATIONS_H_

#if defined(__clang__)
#define RPS_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define RPS_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op outside Clang
#endif

/// Marks a class as a capability (lockable) type. The string names
/// the capability kind in diagnostics ("mutex", "shared mutex").
#define CAPABILITY(x) RPS_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability.
#define SCOPED_CAPABILITY RPS_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Data member may only be accessed while holding the given
/// capability.
#define GUARDED_BY(x) RPS_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member: the *pointed-to* data is protected by the given
/// capability (the pointer itself is not).
#define PT_GUARDED_BY(x) RPS_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Documents (and statically checks) a required acquisition order
/// between capabilities.
#define ACQUIRED_BEFORE(...) \
  RPS_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  RPS_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// Function requires the capability held (exclusively / shared) on
/// entry, and does not release it.
#define REQUIRES(...) \
  RPS_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  RPS_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (exclusively / shared) and holds
/// it on return.
#define ACQUIRE(...) \
  RPS_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  RPS_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (exclusive / shared / either).
#define RELEASE(...) \
  RPS_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  RPS_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  RPS_THREAD_ANNOTATION_ATTRIBUTE(release_generic_capability(__VA_ARGS__))

/// Function tries to acquire the capability; the first argument is
/// the return value meaning success.
#define TRY_ACQUIRE(...) \
  RPS_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  RPS_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capability: the function acquires it
/// internally (self-deadlock guard).
#define EXCLUDES(...) \
  RPS_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (for code paths the
/// static analysis cannot follow).
#define ASSERT_CAPABILITY(x) \
  RPS_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  RPS_THREAD_ANNOTATION_ATTRIBUTE(assert_shared_capability(x))

/// Function returns a reference to the given capability (accessor
/// pattern).
#define RETURN_CAPABILITY(x) \
  RPS_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: turns the analysis off for one function. Every use
/// needs a comment explaining why the analysis cannot see the truth.
#define NO_THREAD_SAFETY_ANALYSIS \
  RPS_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // RPS_UTIL_ANNOTATIONS_H_
