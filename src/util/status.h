// Error model for recoverable failures (I/O, argument validation).
//
// The library does not use exceptions (Google C++ style). Functions
// that can fail at runtime return rps::Status, or rps::Result<T> when
// they also produce a value. Programmer errors use RPS_CHECK instead.

#ifndef RPS_UTIL_STATUS_H_
#define RPS_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "util/check.h"

namespace rps {

/// Broad category of a failure. Kept deliberately small; the message
/// carries the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kIoError,
  kInternal,
  kUnavailable,
};

/// Returns a stable human-readable name for `code` (e.g. "IO_ERROR").
const char* StatusCodeName(StatusCode code);

/// Value-type result of an operation that can fail without a payload.
///
/// A default-constructed Status is OK. Statuses are cheap to copy when
/// OK (empty message) and carry a message otherwise.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status AlreadyExists(std::string message) {
    return Status(StatusCode::kAlreadyExists, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status IoError(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  /// Transient failure that may succeed on retry (see util/retry.h).
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of
/// an errored Result is a checked programmer error.
template <typename T>
class Result {
 public:
  /// Implicit from value and from Status so call sites can `return x;`
  /// or `return Status::IoError(...)`.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    RPS_CHECK_MSG(!std::get<Status>(data_).ok(),
                  "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const T& value() const& {
    RPS_CHECK_MSG(ok(), "Result::value() called on errored Result");
    return std::get<T>(data_);
  }
  T& value() & {
    RPS_CHECK_MSG(ok(), "Result::value() called on errored Result");
    return std::get<T>(data_);
  }
  T&& value() && {
    RPS_CHECK_MSG(ok(), "Result::value() called on errored Result");
    return std::get<T>(std::move(data_));
  }

  /// OK when the Result holds a value.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(data_);
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace rps

/// Propagates a non-OK Status from an expression to the caller.
#define RPS_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::rps::Status rps_status_ = (expr);           \
    if (!rps_status_.ok()) return rps_status_;    \
  } while (false)

#define RPS_INTERNAL_CONCAT_IMPL(a, b) a##b
#define RPS_INTERNAL_CONCAT(a, b) RPS_INTERNAL_CONCAT_IMPL(a, b)

#define RPS_INTERNAL_ASSIGN_OR_RETURN(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) {                                    \
    return tmp.status();                              \
  }                                                   \
  lhs = std::move(tmp).value()

/// Evaluates a Result expression; on error returns its Status,
/// otherwise assigns the value to `lhs` (which may be a declaration,
/// e.g. RPS_ASSIGN_OR_RETURN(const int x, Compute())).
#define RPS_ASSIGN_OR_RETURN(lhs, expr)                                \
  RPS_INTERNAL_ASSIGN_OR_RETURN(                                       \
      RPS_INTERNAL_CONCAT(rps_result_, __LINE__), lhs, expr)

#endif  // RPS_UTIL_STATUS_H_
