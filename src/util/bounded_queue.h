// Bounded blocking MPSC/MPMC queue.
//
// The backpressure primitive under the group-commit WAL
// (storage/group_commit.h): producers Push and block while the queue
// is full -- requests are never dropped -- and the consumer Pop's,
// blocking while it is empty. Close() wakes everyone: pending Push
// calls fail, Pop drains what remains and then reports exhaustion, so
// a consumer loop terminates deterministically.
//
// Built on the capability-annotated Mutex/CondVar wrappers
// (util/mutex.h); safe for any number of producers and consumers,
// though the group-commit use is many producers, one consumer.

#ifndef RPS_UTIL_BOUNDED_QUEUE_H_
#define RPS_UTIL_BOUNDED_QUEUE_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <utility>

#include "util/annotations.h"
#include "util/check.h"
#include "util/mutex.h"

namespace rps {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(int64_t capacity) : capacity_(capacity) {
    RPS_CHECK(capacity >= 1);
  }
  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full. Returns false (dropping `value`)
  /// if the queue was closed before space appeared.
  bool Push(T value) {
    MutexLock lock(&mutex_);
    while (static_cast<int64_t>(items_.size()) >= capacity_ && !closed_) {
      not_full_.Wait(mutex_);
    }
    if (closed_) return false;
    items_.push_back(std::move(value));
    not_empty_.NotifyOne();
    return true;
  }

  /// Blocks while the queue is empty. Returns nullopt only when the
  /// queue is closed AND drained -- items pushed before Close are
  /// always delivered.
  std::optional<T> Pop() {
    MutexLock lock(&mutex_);
    while (items_.empty() && !closed_) not_empty_.Wait(mutex_);
    return PopFrontLocked();
  }

  /// Pop that gives up after `micros` of emptiness: the group-commit
  /// linger window. nullopt means timeout or closed-and-drained;
  /// callers that need to distinguish check closed().
  std::optional<T> PopWithTimeout(int64_t micros) {
    MutexLock lock(&mutex_);
    if (items_.empty() && !closed_) {
      not_empty_.WaitFor(mutex_, micros);
    }
    if (items_.empty()) return std::nullopt;
    return PopFrontLocked();
  }

  /// Non-blocking pop, for draining a batch after the first blocking
  /// Pop succeeded.
  std::optional<T> TryPop() {
    MutexLock lock(&mutex_);
    if (items_.empty()) return std::nullopt;
    return PopFrontLocked();
  }

  /// Wakes every blocked producer and consumer. Push fails from now
  /// on; Pop drains the backlog then reports exhaustion.
  void Close() {
    MutexLock lock(&mutex_);
    closed_ = true;
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  bool closed() const {
    MutexLock lock(&mutex_);
    return closed_;
  }

  int64_t size() const {
    MutexLock lock(&mutex_);
    return static_cast<int64_t>(items_.size());
  }

  int64_t capacity() const { return capacity_; }

 private:
  std::optional<T> PopFrontLocked() REQUIRES(mutex_) {
    if (items_.empty()) return std::nullopt;
    std::optional<T> value(std::move(items_.front()));
    items_.pop_front();
    not_full_.NotifyOne();
    return value;
  }

  const int64_t capacity_;
  mutable Mutex mutex_{"BoundedQueue.mutex"};
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ GUARDED_BY(mutex_);
  bool closed_ GUARDED_BY(mutex_) = false;
};

}  // namespace rps

#endif  // RPS_UTIL_BOUNDED_QUEUE_H_
