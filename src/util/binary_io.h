// Checksummed binary file I/O for structure snapshots.
//
// BinaryWriter/BinaryReader wrap the fault-injecting file layer
// (storage/fault_env.h) with Status-reporting primitives and keep a
// running CRC-32 of every byte written/read, so snapshot formats get
// integrity verification for free. All integers are stored
// little-endian-native; snapshots are not intended to cross
// endianness boundaries (documented in the format headers).
//
// Callers name a failpoint site at open time (e.g. "snapshot"); with
// no failpoints armed the wrappers are thin stdio calls. Writers that
// need a durability barrier pass durable=true to FinishWithChecksum,
// which fsyncs before closing.

#ifndef RPS_UTIL_BINARY_IO_H_
#define RPS_UTIL_BINARY_IO_H_

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "storage/fault_env.h"
#include "util/crc32.h"
#include "util/status.h"

namespace rps {

class BinaryWriter {
 public:
  /// Creates/truncates `path`. `site` names the fault_env failpoint
  /// family used for injected I/O failures.
  static Result<BinaryWriter> Create(const std::string& path,
                                     const std::string& site = "binary");

  BinaryWriter(BinaryWriter&&) noexcept = default;
  BinaryWriter& operator=(BinaryWriter&&) noexcept = default;
  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;
  ~BinaryWriter() = default;

  Status WriteBytes(const void* data, size_t size);

  template <typename T>
  Status WriteScalar(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    return WriteBytes(&value, sizeof(value));
  }

  template <typename T>
  Status WriteVector(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    RPS_RETURN_IF_ERROR(WriteScalar<int64_t>(
        static_cast<int64_t>(values.size())));
    return WriteBytes(values.data(), values.size() * sizeof(T));
  }

  /// CRC-32 of everything written so far.
  uint32_t crc() const { return crc_.value(); }

  /// Appends the running CRC and closes the file. With durable=true,
  /// fsyncs first so the bytes survive a crash after return.
  Status FinishWithChecksum(bool durable = false);

 private:
  BinaryWriter(fault_env::File file, std::string path)
      : file_(std::move(file)), path_(std::move(path)) {}

  fault_env::File file_;
  std::string path_;
  Crc32 crc_;
};

class BinaryReader {
 public:
  /// Opens `path` for reading.
  static Result<BinaryReader> Open(const std::string& path,
                                   const std::string& site = "binary");

  BinaryReader(BinaryReader&&) noexcept = default;
  BinaryReader& operator=(BinaryReader&&) noexcept = default;
  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;
  ~BinaryReader() = default;

  Status ReadBytes(void* data, size_t size);

  template <typename T>
  Result<T> ReadScalar() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value;
    RPS_RETURN_IF_ERROR(ReadBytes(&value, sizeof(value)));
    return value;
  }

  template <typename T>
  Result<std::vector<T>> ReadVector(int64_t max_elements) {
    static_assert(std::is_trivially_copyable_v<T>);
    RPS_ASSIGN_OR_RETURN(const int64_t count, ReadScalar<int64_t>());
    if (count < 0 || count > max_elements) {
      return Status::IoError("corrupt vector length " +
                             std::to_string(count) + " in " + path_);
    }
    std::vector<T> values(static_cast<size_t>(count));
    RPS_RETURN_IF_ERROR(
        ReadBytes(values.data(), values.size() * sizeof(T)));
    return values;
  }

  /// CRC-32 of everything read so far.
  uint32_t crc() const { return crc_.value(); }

  /// Reads the trailing checksum (written by FinishWithChecksum) and
  /// verifies it matches the bytes read.
  Status VerifyChecksum();

 private:
  BinaryReader(fault_env::File file, std::string path)
      : file_(std::move(file)), path_(std::move(path)) {}

  fault_env::File file_;
  std::string path_;
  Crc32 crc_;
};

}  // namespace rps

#endif  // RPS_UTIL_BINARY_IO_H_
