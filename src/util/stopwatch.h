// Monotonic wall-clock stopwatch for workload drivers and table
// benchmarks (google-benchmark handles its own timing).

#ifndef RPS_UTIL_STOPWATCH_H_
#define RPS_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace rps {

/// Measures elapsed wall time from construction or the last Reset().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed nanoseconds since construction/Reset.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rps

#endif  // RPS_UTIL_STOPWATCH_H_
