#include "util/epoch.h"

#include <unordered_set>
#include <utility>

#include "obs/metrics.h"

namespace rps {

namespace {

/// Live-domain registry: thread-exit cleanup must not touch a domain
/// that was already destroyed (a test-local domain on the stack), so
/// destruction and cleanup rendezvous here. Leaked like the metric
/// registry so late-exiting threads can still consult it.
struct DomainRegistry {
  Mutex mu{"EpochDomain.registry_mu"};
  std::unordered_set<const EpochDomain*> live GUARDED_BY(mu);
};

DomainRegistry& Registry() {
  static DomainRegistry* const registry = new DomainRegistry();
  return *registry;
}

}  // namespace

namespace epoch_internal {

/// Per-thread slot table: one (domain, slot, pin-depth) entry per
/// domain this thread has pinned. Destroyed at thread exit, releasing
/// the claimed slots of every still-live domain.
struct ThreadSlots {
  struct Entry {
    EpochDomain* domain;
    void* slot;
    int depth;
  };
  std::vector<Entry> entries;

  ~ThreadSlots() {
    DomainRegistry& registry = Registry();
    MutexLock lock(&registry.mu);
    for (const Entry& entry : entries) {
      if (registry.live.count(entry.domain) != 0) {
        EpochDomain::ReleaseSlot(entry.slot);
      }
    }
  }

  Entry& EntryFor(EpochDomain* domain) {
    for (Entry& entry : entries) {
      if (entry.domain == domain) return entry;
    }
    entries.push_back(Entry{domain, nullptr, 0});
    return entries.back();
  }
};

ThreadSlots& CurrentThreadSlots() {
  thread_local ThreadSlots slots;
  return slots;
}

}  // namespace epoch_internal

EpochDomain::EpochDomain() {
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  retired_total_ = &registry.GetCounter("rps_epoch_retired_total");
  reclaimed_total_ = &registry.GetCounter("rps_epoch_reclaimed_total");
  advance_total_ = &registry.GetCounter("rps_epoch_advances_total");
  advance_blocked_total_ =
      &registry.GetCounter("rps_epoch_advance_blocked_total");
  retired_objects_ = &registry.GetGauge("rps_epoch_retired_objects");
  epoch_gauge_ = &registry.GetGauge("rps_epoch_current");
  reclaim_lag_epochs_ =
      &registry.GetHistogram("rps_epoch_reclaim_lag_epochs");
  DomainRegistry& domains = Registry();
  MutexLock lock(&domains.mu);
  domains.live.insert(this);
}

EpochDomain::~EpochDomain() {
  {
    DomainRegistry& domains = Registry();
    MutexLock lock(&domains.mu);
    domains.live.erase(this);
  }
  // No reader can be pinned any more (callers own that invariant), so
  // everything still retired is free game.
  std::vector<Retired> leftovers;
  {
    MutexLock lock(&retire_mu_);
    leftovers.swap(retired_);
  }
  for (const Retired& entry : leftovers) entry.deleter(entry.object);
  retired_objects_->Add(-static_cast<int64_t>(leftovers.size()));
}

EpochDomain& EpochDomain::Global() {
  static EpochDomain* const domain = new EpochDomain();
  return *domain;
}

EpochDomain::Slot* EpochDomain::ThreadSlot() {
  epoch_internal::ThreadSlots::Entry& entry =
      epoch_internal::CurrentThreadSlots().EntryFor(this);
  if (entry.slot == nullptr) {
    for (Slot& slot : slots_) {
      bool expected = false;
      if (slot.claimed.compare_exchange_strong(expected, true,
                                               std::memory_order_acq_rel)) {
        entry.slot = &slot;
        break;
      }
    }
    RPS_CHECK_MSG(entry.slot != nullptr,
                  "EpochDomain: more than kMaxSlots threads pinning");
  }
  return static_cast<Slot*>(entry.slot);
}

void EpochDomain::ReleaseSlot(void* opaque_slot) {
  Slot* slot = static_cast<Slot*>(opaque_slot);
  slot->state.store(0, std::memory_order_release);
  slot->claimed.store(false, std::memory_order_release);
}

void EpochDomain::Pin() {
  epoch_internal::ThreadSlots::Entry& entry =
      epoch_internal::CurrentThreadSlots().EntryFor(this);
  if (entry.depth++ > 0) return;  // nested pin: outer one holds
  Slot* slot = ThreadSlot();
  const uint64_t epoch = global_epoch_.load(std::memory_order_relaxed);
  slot->state.store((epoch << 1) | 1, std::memory_order_seq_cst);
  // Order the slot publication before any version-pointer load the
  // pinned section performs; pairs with the fence in TryAdvance.
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

void EpochDomain::Unpin() {
  epoch_internal::ThreadSlots::Entry& entry =
      epoch_internal::CurrentThreadSlots().EntryFor(this);
  RPS_DCHECK(entry.depth > 0);
  if (--entry.depth > 0) return;
  // Release store: the advancing writer's acquire scan synchronizes
  // with this, ordering every read in the pinned section before any
  // later free.
  static_cast<Slot*>(entry.slot)->state.store(0, std::memory_order_release);
}

bool EpochDomain::PinnedByThisThread() const {
  for (const epoch_internal::ThreadSlots::Entry& entry :
       epoch_internal::CurrentThreadSlots().entries) {
    if (entry.domain == this) return entry.depth > 0;
  }
  return false;
}

bool EpochDomain::TryAdvance() {
  const uint64_t epoch = global_epoch_.load(std::memory_order_seq_cst);
  // Order the scan after the caller's unpublishing pointer swap and
  // after any in-flight pin's slot store; pairs with the fence in Pin.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  for (const Slot& slot : slots_) {
    const uint64_t state = slot.state.load(std::memory_order_acquire);
    if ((state & 1) != 0 && (state >> 1) != epoch) {
      advance_blocked_total_->Increment();
      return false;  // a reader has not observed the current epoch yet
    }
  }
  uint64_t expected = epoch;
  if (global_epoch_.compare_exchange_strong(expected, epoch + 1,
                                            std::memory_order_seq_cst)) {
    advance_total_->Increment();
    epoch_gauge_->Set(static_cast<int64_t>(epoch + 1));
    return true;
  }
  return false;  // another writer advanced first; that still counts
}

void EpochDomain::RetireRaw(void* object, void (*deleter)(void*)) {
  const uint64_t epoch = global_epoch_.load(std::memory_order_acquire);
  {
    MutexLock lock(&retire_mu_);
    retired_.push_back(Retired{object, deleter, epoch});
  }
  retired_total_->Increment();
  retired_objects_->Add(1);
}

int64_t EpochDomain::Reclaim() {
  TryAdvance();
  const uint64_t epoch = global_epoch_.load(std::memory_order_acquire);
  std::vector<Retired> to_free;
  {
    MutexLock lock(&retire_mu_);
    size_t kept = 0;
    for (Retired& entry : retired_) {
      if (entry.epoch + 2 <= epoch) {
        to_free.push_back(entry);
      } else {
        retired_[kept++] = entry;
      }
    }
    retired_.resize(kept);
  }
  // Destructors run outside the lock: they may be arbitrarily heavy
  // (a retired version drops whole cube structures).
  for (const Retired& entry : to_free) {
    reclaim_lag_epochs_->ObserveNanos(
        static_cast<int64_t>(epoch - entry.epoch));
    entry.deleter(entry.object);
  }
  const int64_t freed = static_cast<int64_t>(to_free.size());
  if (freed > 0) {
    reclaimed_total_->Increment(freed);
    retired_objects_->Add(-freed);
  }
  return freed;
}

void EpochDomain::Drain() {
  // Two advances make any retired entry eligible; keep stepping while
  // progress is possible so a drain after the last unpin frees
  // everything.
  for (int attempt = 0; attempt < 4; ++attempt) {
    Reclaim();
    if (RetiredCount() == 0) return;
  }
}

int64_t EpochDomain::RetiredCount() const {
  MutexLock lock(&retire_mu_);
  return static_cast<int64_t>(retired_.size());
}

std::string EpochDomain::VarzJson() const {
  int claimed = 0;
  int pinned = 0;
  for (const Slot& slot : slots_) {
    if (slot.claimed.load(std::memory_order_acquire)) ++claimed;
    if ((slot.state.load(std::memory_order_acquire) & 1) != 0) ++pinned;
  }
  std::string out = "{\"epoch\":";
  out += std::to_string(CurrentEpoch());
  out += ",\"slots_claimed\":";
  out += std::to_string(claimed);
  out += ",\"slots_pinned\":";
  out += std::to_string(pinned);
  out += ",\"retired_objects\":";
  out += std::to_string(RetiredCount());
  out += '}';
  return out;
}

}  // namespace rps
