// Invariant-checking macros for programmer errors.
//
// RPS_CHECK fires in all build modes; RPS_DCHECK only in debug builds
// (when NDEBUG is not defined). Both abort the process with a message
// naming the failed condition and source location. Use them for
// contract violations (out-of-range indices, broken invariants), not
// for recoverable conditions -- those use rps::Status (see
// util/status.h).

#ifndef RPS_UTIL_CHECK_H_
#define RPS_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace rps::internal_check {

[[noreturn]] inline void CheckFail(const char* condition, const char* file,
                                   int line, const char* message) {
  std::fprintf(stderr, "RPS_CHECK failed: %s at %s:%d%s%s\n", condition, file,
               line, message[0] != '\0' ? ": " : "", message);
  std::abort();
}

}  // namespace rps::internal_check

#define RPS_CHECK(condition)                                              \
  do {                                                                    \
    if (!(condition)) {                                                   \
      ::rps::internal_check::CheckFail(#condition, __FILE__, __LINE__,    \
                                       "");                               \
    }                                                                     \
  } while (false)

#define RPS_CHECK_MSG(condition, message)                                 \
  do {                                                                    \
    if (!(condition)) {                                                   \
      ::rps::internal_check::CheckFail(#condition, __FILE__, __LINE__,    \
                                       (message));                        \
    }                                                                     \
  } while (false)

#ifndef NDEBUG
#define RPS_DCHECK(condition) RPS_CHECK(condition)
#else
#define RPS_DCHECK(condition) \
  do {                        \
  } while (false)
#endif

#endif  // RPS_UTIL_CHECK_H_
