// Invariant-checking macros for programmer errors.
//
// RPS_CHECK fires in all build modes; RPS_DCHECK only in debug builds
// (when NDEBUG is not defined). Both abort the process with a message
// naming the failed condition and source location. Use them for
// contract violations (out-of-range indices, broken invariants), not
// for recoverable conditions -- those use rps::Status (see
// util/status.h).

#ifndef RPS_UTIL_CHECK_H_
#define RPS_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace rps::internal_check {

[[noreturn]] inline void CheckFail(const char* condition, const char* file,
                                   int line, const char* message) {
  std::fprintf(stderr, "RPS_CHECK failed: %s at %s:%d%s%s\n", condition, file,
               line, message[0] != '\0' ? ": " : "", message);
  std::abort();
}

}  // namespace rps::internal_check

#define RPS_CHECK(condition)                                              \
  do {                                                                    \
    if (!(condition)) {                                                   \
      ::rps::internal_check::CheckFail(#condition, __FILE__, __LINE__,    \
                                       "");                               \
    }                                                                     \
  } while (false)

#define RPS_CHECK_MSG(condition, message)                                 \
  do {                                                                    \
    if (!(condition)) {                                                   \
      ::rps::internal_check::CheckFail(#condition, __FILE__, __LINE__,    \
                                       (message));                        \
    }                                                                     \
  } while (false)

// In NDEBUG builds the condition must stay syntax-checked (and its
// variables odr-used) without being evaluated; sizeof of an
// unevaluated operand does exactly that, so release builds emit no
// code and no unused-variable warnings.
#ifndef NDEBUG
#define RPS_DCHECK(condition) RPS_CHECK(condition)
#define RPS_DCHECK_MSG(condition, message) RPS_CHECK_MSG(condition, message)
#else
#define RPS_DCHECK(condition)                          \
  do {                                                 \
    (void)sizeof(static_cast<bool>(condition));        \
  } while (false)
#define RPS_DCHECK_MSG(condition, message)             \
  do {                                                 \
    (void)sizeof(static_cast<bool>(condition));        \
    (void)sizeof(message);                             \
  } while (false)
#endif

#endif  // RPS_UTIL_CHECK_H_
