// Small integer-math helpers used throughout the library.
//
// All helpers operate on int64_t (cube extents and cell counts can
// overflow 32 bits quickly: a 4-d cube of side 256 already has 2^32
// cells).

#ifndef RPS_UTIL_MATH_H_
#define RPS_UTIL_MATH_H_

#include <cstdint>

namespace rps {

/// Returns base^exp for exp >= 0. Checked against int64 overflow.
int64_t IntPow(int64_t base, int exp);

/// Returns ceil(a / b) for a >= 0, b > 0.
int64_t CeilDiv(int64_t a, int64_t b);

/// Returns floor(sqrt(x)) for x >= 0, exactly.
int64_t ISqrt(int64_t x);

/// Returns the integer k >= 1 closest to sqrt(x) (x >= 1); ties go to
/// the smaller candidate. This is the paper's recommended overlay box
/// side (Section 4.3: cost minimized at k = sqrt(n)).
int64_t NearestSqrt(int64_t x);

/// True if a*b would overflow int64.
bool MulWouldOverflow(int64_t a, int64_t b);

}  // namespace rps

#endif  // RPS_UTIL_MATH_H_
