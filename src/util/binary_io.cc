#include "util/binary_io.h"

#include <utility>

namespace rps {

Result<BinaryWriter> BinaryWriter::Create(const std::string& path,
                                          const std::string& site) {
  RPS_ASSIGN_OR_RETURN(fault_env::File file,
                       fault_env::File::Open(path, "wb", site));
  return BinaryWriter(std::move(file), path);
}

Status BinaryWriter::WriteBytes(const void* data, size_t size) {
  if (!file_.open()) return Status::FailedPrecondition("writer closed");
  if (size == 0) return Status::Ok();
  RPS_RETURN_IF_ERROR(file_.Write(data, size));
  crc_.Update(data, size);
  return Status::Ok();
}

Status BinaryWriter::FinishWithChecksum(bool durable) {
  if (!file_.open()) return Status::FailedPrecondition("writer closed");
  const uint32_t checksum = crc_.value();
  RPS_RETURN_IF_ERROR(file_.Write(&checksum, sizeof(checksum)));
  if (durable) RPS_RETURN_IF_ERROR(file_.Sync());
  return file_.Close();
}

Result<BinaryReader> BinaryReader::Open(const std::string& path,
                                        const std::string& site) {
  RPS_ASSIGN_OR_RETURN(fault_env::File file,
                       fault_env::File::Open(path, "rb", site));
  return BinaryReader(std::move(file), path);
}

Status BinaryReader::ReadBytes(void* data, size_t size) {
  if (!file_.open()) return Status::FailedPrecondition("reader closed");
  if (size == 0) return Status::Ok();
  RPS_RETURN_IF_ERROR(file_.Read(data, size));
  crc_.Update(data, size);
  return Status::Ok();
}

Status BinaryReader::VerifyChecksum() {
  if (!file_.open()) return Status::FailedPrecondition("reader closed");
  const uint32_t expected = crc_.value();  // CRC of payload bytes read
  uint32_t stored;
  Status read_status = file_.Read(&stored, sizeof(stored));
  if (!read_status.ok()) {
    return Status::IoError("missing checksum: " + path_);
  }
  if (stored != expected) {
    return Status::IoError("checksum mismatch in " + path_);
  }
  return file_.Close();
}

}  // namespace rps
