#include "util/binary_io.h"

namespace rps {

Result<BinaryWriter> BinaryWriter::Create(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot create: " + path);
  }
  return BinaryWriter(file, path);
}

BinaryWriter::~BinaryWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status BinaryWriter::WriteBytes(const void* data, size_t size) {
  if (file_ == nullptr) return Status::FailedPrecondition("writer closed");
  if (size == 0) return Status::Ok();
  if (std::fwrite(data, 1, size, file_) != size) {
    return Status::IoError("short write: " + path_);
  }
  crc_.Update(data, size);
  return Status::Ok();
}

Status BinaryWriter::FinishWithChecksum() {
  if (file_ == nullptr) return Status::FailedPrecondition("writer closed");
  const uint32_t checksum = crc_.value();
  if (std::fwrite(&checksum, 1, sizeof(checksum), file_) !=
      sizeof(checksum)) {
    return Status::IoError("short checksum write: " + path_);
  }
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Status::IoError("close failed: " + path_);
  return Status::Ok();
}

Result<BinaryReader> BinaryReader::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError("cannot open: " + path);
  }
  return BinaryReader(file, path);
}

BinaryReader::~BinaryReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Status BinaryReader::ReadBytes(void* data, size_t size) {
  if (file_ == nullptr) return Status::FailedPrecondition("reader closed");
  if (size == 0) return Status::Ok();
  if (std::fread(data, 1, size, file_) != size) {
    return Status::IoError("short read: " + path_);
  }
  crc_.Update(data, size);
  return Status::Ok();
}

Status BinaryReader::VerifyChecksum() {
  if (file_ == nullptr) return Status::FailedPrecondition("reader closed");
  const uint32_t expected = crc_.value();  // CRC of payload bytes read
  uint32_t stored;
  if (std::fread(&stored, 1, sizeof(stored), file_) != sizeof(stored)) {
    return Status::IoError("missing checksum: " + path_);
  }
  if (stored != expected) {
    return Status::IoError("checksum mismatch in " + path_);
  }
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Status::IoError("close failed: " + path_);
  return Status::Ok();
}

}  // namespace rps
