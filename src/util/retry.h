// Bounded retry with exponential backoff for transient failures.
//
// The storage layer distinguishes retryable conditions (UNAVAILABLE
// for transient short writes, RESOURCE_EXHAUSTED for ENOSPC-like
// pressure that may clear) from fatal ones (IO_ERROR, corrupt data).
// RetryWithBackoff re-runs an operation while it keeps failing
// retryably, sleeping between attempts, and returns the last status
// once attempts are exhausted or a fatal status appears. Attempt
// counts are exported as rps_retry_attempts_total /
// rps_retry_exhausted_total.

#ifndef RPS_UTIL_RETRY_H_
#define RPS_UTIL_RETRY_H_

#include <chrono>
#include <cstdint>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "util/status.h"

namespace rps {

struct RetryPolicy {
  int max_attempts = 3;               // total attempts, including the first
  int64_t initial_backoff_micros = 100;
  double backoff_multiplier = 2.0;

  /// No sleeping between attempts; for tests and simulated faults.
  static RetryPolicy NoBackoff(int max_attempts = 3) {
    return RetryPolicy{max_attempts, 0, 1.0};
  }
};

/// True for status codes that may succeed on a simple retry.
inline bool IsRetryable(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kResourceExhausted;
}

/// Runs `fn` (a callable returning Status) until it succeeds, fails
/// with a non-retryable code, or `policy.max_attempts` is reached.
template <typename Fn>
Status RetryWithBackoff(const RetryPolicy& policy, Fn&& fn) {
  static obs::Counter& attempts_total =
      obs::MetricRegistry::Global().GetCounter("rps_retry_attempts_total");
  static obs::Counter& exhausted_total =
      obs::MetricRegistry::Global().GetCounter("rps_retry_exhausted_total");
  int64_t backoff_micros = policy.initial_backoff_micros;
  Status status;
  for (int attempt = 1;; ++attempt) {
    attempts_total.Increment();
    status = fn();
    if (status.ok() || !IsRetryable(status)) return status;
    if (attempt >= policy.max_attempts) break;
    if (backoff_micros > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_micros));
      backoff_micros = static_cast<int64_t>(
          static_cast<double>(backoff_micros) * policy.backoff_multiplier);
    }
  }
  exhausted_total.Increment();
  return status;
}

}  // namespace rps

#endif  // RPS_UTIL_RETRY_H_
