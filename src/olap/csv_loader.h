// CSV record ingestion for the OLAP layer.
//
// Parses simple comma-separated text (no embedded commas/quotes --
// synthetic and exported analytics data; a malformed line is reported
// with its number) into OlapRecords against a schema: one column per
// dimension in schema order, then the measure column. Integer
// dimensions parse as int64, binned as double, categorical as the raw
// label.

#ifndef RPS_OLAP_CSV_LOADER_H_
#define RPS_OLAP_CSV_LOADER_H_

#include <string>
#include <vector>

#include "olap/engine.h"
#include "util/status.h"

namespace rps {

struct CsvParseReport {
  std::vector<OlapRecord> records;
  int64_t lines_parsed = 0;
  int64_t lines_skipped = 0;          // blank lines
  std::vector<std::string> errors;    // "line N: reason" (parse continues)
};

/// Parses `text` (entire CSV contents, '\n'-separated, optional
/// header skipped when `has_header`). Field count must be
/// dimensions + 1 (measure last). Lines that fail to parse are
/// recorded in `errors` and skipped; a Status error is returned only
/// for schema-level misuse (never for data content).
Result<CsvParseReport> ParseCsv(const Schema& schema, const std::string& text,
                                bool has_header);

}  // namespace rps

#endif  // RPS_OLAP_CSV_LOADER_H_
