#include "olap/window.h"

#include "olap/engine.h"

namespace rps {

Result<std::vector<double>> SlotSeries(const OlapEngine& engine,
                                       const RangeQuery& query,
                                       const std::string& dimension) {
  RPS_ASSIGN_OR_RETURN(const int j,
                       engine.schema().DimensionIndex(dimension));
  RPS_ASSIGN_OR_RETURN(const Box range, engine.ResolveQuery(query));
  std::vector<double> series;
  series.reserve(static_cast<size_t>(range.Extent(j)));
  for (int64_t p = range.lo()[j]; p <= range.hi()[j]; ++p) {
    CellIndex lo = range.lo();
    CellIndex hi = range.hi();
    lo[j] = p;
    hi[j] = p;
    RPS_ASSIGN_OR_RETURN(const double sum,
                         engine.SumOverCells(Box(lo, hi)));
    series.push_back(sum);
  }
  return series;
}

Result<std::vector<double>> PeriodDelta(const OlapEngine& engine,
                                        const RangeQuery& query,
                                        const std::string& dimension,
                                        int64_t lag) {
  if (lag < 1) return Status::InvalidArgument("lag must be >= 1");
  RPS_ASSIGN_OR_RETURN(const std::vector<double> series,
                       SlotSeries(engine, query, dimension));
  std::vector<double> deltas(series.size());
  for (size_t i = 0; i < series.size(); ++i) {
    deltas[i] = (static_cast<int64_t>(i) >= lag)
                    ? series[i] - series[i - static_cast<size_t>(lag)]
                    : series[i];
  }
  return deltas;
}

Result<std::vector<double>> CumulativeSeries(const OlapEngine& engine,
                                             const RangeQuery& query,
                                             const std::string& dimension) {
  RPS_ASSIGN_OR_RETURN(const int j,
                       engine.schema().DimensionIndex(dimension));
  RPS_ASSIGN_OR_RETURN(const Box range, engine.ResolveQuery(query));
  std::vector<double> series;
  series.reserve(static_cast<size_t>(range.Extent(j)));
  for (int64_t p = range.lo()[j]; p <= range.hi()[j]; ++p) {
    CellIndex hi = range.hi();
    hi[j] = p;
    RPS_ASSIGN_OR_RETURN(const double sum,
                         engine.SumOverCells(Box(range.lo(), hi)));
    series.push_back(sum);
  }
  return series;
}

}  // namespace rps
