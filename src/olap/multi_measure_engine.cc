#include "olap/multi_measure_engine.h"

#include <cmath>
#include <unordered_set>

#include "util/check.h"

namespace rps {

MultiMeasureEngine::MultiMeasureEngine(std::vector<std::string> measure_names,
                                       std::vector<Dimension> dimensions,
                                       EngineMethod method)
    : schema_("<multi>", std::move(dimensions)),
      measure_names_(std::move(measure_names)) {
  RPS_CHECK_MSG(!measure_names_.empty(), "need at least one measure");
  std::unordered_set<std::string> seen;
  for (const std::string& name : measure_names_) {
    RPS_CHECK_MSG(seen.insert(name).second, "measure names must be unique");
  }
  const Shape shape = schema_.CubeShape();
  sums_.reserve(measure_names_.size());
  for (size_t m = 0; m < measure_names_.size(); ++m) {
    sums_.push_back(MakeDoubleMethod(method, shape));
  }
  counts_ = MakeCountMethod(method, shape);
}

Result<int> MultiMeasureEngine::MeasureIndex(
    const std::string& measure) const {
  for (size_t m = 0; m < measure_names_.size(); ++m) {
    if (measure_names_[m] == measure) return static_cast<int>(m);
  }
  return Status::NotFound("no measure named '" + measure + "'");
}

IngestReport MultiMeasureEngine::Load(
    const std::vector<MultiMeasureRecord>& records) {
  IngestReport report;
  const Shape shape = schema_.CubeShape();
  std::vector<NdArray<double>> sums(measure_names_.size(),
                                    NdArray<double>(shape, 0.0));
  NdArray<int64_t> counts(shape, 0);
  for (const MultiMeasureRecord& record : records) {
    if (record.measures.size() != measure_names_.size()) {
      ++report.rejected;
      continue;
    }
    const Result<CellIndex> cell = schema_.CellOf(record.values);
    if (!cell.ok()) {
      ++report.rejected;
      continue;
    }
    for (size_t m = 0; m < measure_names_.size(); ++m) {
      sums[m].at(cell.value()) += record.measures[m];
    }
    counts.at(cell.value()) += 1;
    ++report.accepted;
  }
  for (size_t m = 0; m < measure_names_.size(); ++m) {
    sums_[m]->Build(sums[m]);
  }
  counts_->Build(counts);
  return report;
}

Status MultiMeasureEngine::Insert(const MultiMeasureRecord& record) {
  if (record.measures.size() != measure_names_.size()) {
    return Status::InvalidArgument("record has " +
                                   std::to_string(record.measures.size()) +
                                   " measures, engine has " +
                                   std::to_string(measure_names_.size()));
  }
  RPS_ASSIGN_OR_RETURN(const CellIndex cell, schema_.CellOf(record.values));
  for (size_t m = 0; m < measure_names_.size(); ++m) {
    sums_[m]->Add(cell, record.measures[m]);
  }
  counts_->Add(cell, 1);
  return Status::Ok();
}

Result<double> MultiMeasureEngine::Sum(const std::string& measure,
                                       const RangeQuery& query) const {
  RPS_ASSIGN_OR_RETURN(const int m, MeasureIndex(measure));
  RPS_ASSIGN_OR_RETURN(const Box range, query.Resolve(schema_));
  return sums_[static_cast<size_t>(m)]->RangeSum(range);
}

Result<int64_t> MultiMeasureEngine::Count(const RangeQuery& query) const {
  RPS_ASSIGN_OR_RETURN(const Box range, query.Resolve(schema_));
  return counts_->RangeSum(range);
}

Result<double> MultiMeasureEngine::Average(const std::string& measure,
                                           const RangeQuery& query) const {
  RPS_ASSIGN_OR_RETURN(const int m, MeasureIndex(measure));
  RPS_ASSIGN_OR_RETURN(const Box range, query.Resolve(schema_));
  const int64_t count = counts_->RangeSum(range);
  if (count == 0) {
    return Status::FailedPrecondition("AVERAGE over a range with no records");
  }
  return sums_[static_cast<size_t>(m)]->RangeSum(range) /
         static_cast<double>(count);
}

Result<double> MultiMeasureEngine::RatioOfSums(const std::string& numerator,
                                               const std::string& denominator,
                                               const RangeQuery& query) const {
  RPS_ASSIGN_OR_RETURN(const int num, MeasureIndex(numerator));
  RPS_ASSIGN_OR_RETURN(const int den, MeasureIndex(denominator));
  RPS_ASSIGN_OR_RETURN(const Box range, query.Resolve(schema_));
  const double denominator_sum =
      sums_[static_cast<size_t>(den)]->RangeSum(range);
  if (denominator_sum == 0.0) {
    return Status::FailedPrecondition("denominator sums to zero");
  }
  return sums_[static_cast<size_t>(num)]->RangeSum(range) / denominator_sum;
}

}  // namespace rps
