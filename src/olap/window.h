// Window operators over one dimension, built on range sums: per-slot
// series, period-over-period deltas, and cumulative series. Together
// with RollingSum/RollingAverage (olap/engine.h) these cover the
// paper's ROLLING operators and the trend questions its introduction
// motivates ("queries of this form can be very useful in finding
// trends").

#ifndef RPS_OLAP_WINDOW_H_
#define RPS_OLAP_WINDOW_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace rps {

class OlapEngine;
class RangeQuery;

/// SUM per slot of `dimension` within the query range (the series
/// GROUP BY produces, without labels/counts).
Result<std::vector<double>> SlotSeries(const OlapEngine& engine,
                                       const RangeQuery& query,
                                       const std::string& dimension);

/// Period-over-period delta: out[i] = series[i] - series[i - lag],
/// with out[i] = series[i] for i < lag (no earlier period). lag >= 1.
/// E.g. lag=7 on a day dimension gives week-over-week change.
Result<std::vector<double>> PeriodDelta(const OlapEngine& engine,
                                        const RangeQuery& query,
                                        const std::string& dimension,
                                        int64_t lag);

/// Cumulative sums along `dimension` within the query range:
/// out[i] = sum of slots lo..lo+i.
Result<std::vector<double>> CumulativeSeries(const OlapEngine& engine,
                                             const RangeQuery& query,
                                             const std::string& dimension);

}  // namespace rps

#endif  // RPS_OLAP_WINDOW_H_
