#include "olap/sharded_engine.h"

#include <algorithm>
#include <utility>

#include "olap/concurrent_engine.h"
#include "util/stopwatch.h"

namespace rps {

namespace {

/// Batches at least this large fan out over the thread pool; smaller
/// ones stay serial (per-query work is O(2^d) -- parallelism only
/// pays once the batch amortizes the chunk handoff).
constexpr size_t kParallelBatchThreshold = 64;

}  // namespace

std::unique_ptr<OlapServingEngine> MakeServingEngine(Schema schema,
                                                     EngineMethod method,
                                                     int shards,
                                                     ThreadPool* pool) {
  if (shards == 0) {
    return std::make_unique<ConcurrentOlapEngine>(std::move(schema), method,
                                                  pool);
  }
  return std::make_unique<ShardedOlapEngine>(std::move(schema), method,
                                             shards, pool);
}

ShardedOlapEngine::ShardedOlapEngine(Schema schema, EngineMethod method,
                                     int shards, ThreadPool* pool,
                                     EpochDomain* domain)
    : schema_(std::move(schema)),
      method_(method),
      pool_(pool),
      domain_(domain) {
  const Shape shape = schema_.CubeShape();
  const int64_t rows = shape.extent(0);
  if (shards <= 0) shards = ThreadPool::DefaultThreads();
  const int64_t count = std::clamp<int64_t>(shards, 1, rows);
  starts_.reserve(static_cast<size_t>(count) + 1);
  // Balanced contiguous slices: the first (rows % count) shards get
  // one extra row.
  int64_t at = 0;
  for (int64_t s = 0; s < count; ++s) {
    starts_.push_back(at);
    at += rows / count + (s < rows % count ? 1 : 0);
  }
  starts_.push_back(rows);

  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  const obs::Labels labels = {{"method", EngineMethodName(method_)},
                              {"shards", std::to_string(count)}};
  query_seconds_ =
      &registry.GetHistogram("rps_sharded_engine_query_seconds", labels);
  insert_seconds_ =
      &registry.GetHistogram("rps_sharded_engine_insert_seconds", labels);
  publish_seconds_ =
      &registry.GetHistogram("rps_sharded_engine_publish_seconds", labels);
  publishes_total_ =
      &registry.GetCounter("rps_shard_publishes_total", labels);
  cloned_cells_total_ =
      &registry.GetCounter("rps_shard_cloned_cells_total", labels);
  shard_count_ = &registry.GetGauge("rps_shard_count", labels);
  generation_gauge_ = &registry.GetGauge("rps_shard_generation", labels);
  shard_count_->Set(static_cast<double>(count));

  // Initial version: every shard an all-zero cube at generation 1.
  auto* version = new EngineVersion();
  version->generation = 1;
  version->shards.reserve(static_cast<size_t>(count));
  for (int s = 0; s < count; ++s) {
    const Shape sub = ShardShape(s);
    auto state = std::make_shared<ShardState>();
    state->sums = MakeDoubleMethod(method_, sub, pool_);
    state->counts = MakeCountMethod(method_, sub, pool_);
    state->generation = 1;
    RPS_CHECK_MSG(state->sums->Clone() != nullptr &&
                      state->counts->Clone() != nullptr,
                  "ShardedOlapEngine requires a clonable QueryMethod");
    version->shards.push_back(std::move(state));
  }
  version_.store(version, std::memory_order_release);
  generation_gauge_->Set(1);
  {
    MutexLock lock(&writer_mu_);
    next_generation_ = 2;
  }
}

ShardedOlapEngine::~ShardedOlapEngine() {
  const EngineVersion* last =
      version_.exchange(nullptr, std::memory_order_acq_rel);
  domain_->Retire(const_cast<EngineVersion*>(last));
  // Best effort: with no readers pinned this frees everything this
  // engine retired; stragglers stay on the (leaked) global domain's
  // list and are reclaimed by later users.
  domain_->Drain();
}

int ShardedOlapEngine::ShardOf(int64_t row0) const {
  // starts_ is sorted; the owning shard is the last start <= row0.
  const auto it =
      std::upper_bound(starts_.begin(), starts_.end(), row0);
  return static_cast<int>(it - starts_.begin()) - 1;
}

Shape ShardedOlapEngine::ShardShape(int s) const {
  const Shape shape = schema_.CubeShape();
  std::vector<int64_t> extents;
  extents.reserve(static_cast<size_t>(shape.dims()));
  extents.push_back(starts_[static_cast<size_t>(s) + 1] -
                    starts_[static_cast<size_t>(s)]);
  for (int j = 1; j < shape.dims(); ++j) extents.push_back(shape.extent(j));
  return Shape::FromExtents(extents);
}

uint64_t ShardedOlapEngine::generation() const {
  EpochDomain::Guard guard(*domain_);
  return version_.load(std::memory_order_acquire)->generation;
}

double ShardedOlapEngine::SumInVersion(const EngineVersion& version,
                                       const Box& range) const {
  const int first = ShardOf(range.lo()[0]);
  const int last = ShardOf(range.hi()[0]);
  double total = 0;
  for (int s = first; s <= last; ++s) {
    const int64_t base = starts_[static_cast<size_t>(s)];
    CellIndex lo = range.lo();
    CellIndex hi = range.hi();
    lo[0] = std::max(lo[0], base) - base;
    hi[0] = std::min(hi[0], starts_[static_cast<size_t>(s) + 1] - 1) - base;
    total += version.shards[static_cast<size_t>(s)]->sums->RangeSum(
        Box(lo, hi));
  }
  return total;
}

int64_t ShardedOlapEngine::CountInVersion(const EngineVersion& version,
                                          const Box& range) const {
  const int first = ShardOf(range.lo()[0]);
  const int last = ShardOf(range.hi()[0]);
  int64_t total = 0;
  for (int s = first; s <= last; ++s) {
    const int64_t base = starts_[static_cast<size_t>(s)];
    CellIndex lo = range.lo();
    CellIndex hi = range.hi();
    lo[0] = std::max(lo[0], base) - base;
    hi[0] = std::min(hi[0], starts_[static_cast<size_t>(s) + 1] - 1) - base;
    total += version.shards[static_cast<size_t>(s)]->counts->RangeSum(
        Box(lo, hi));
  }
  return total;
}

std::shared_ptr<const ShardedOlapEngine::ShardState>
ShardedOlapEngine::BuildShard(int s, const NdArray<double>& sums,
                              const NdArray<int64_t>& counts,
                              uint64_t generation) const {
  auto state = std::make_shared<ShardState>();
  state->sums = MakeDoubleMethod(method_, sums.shape(), pool_);
  state->sums->Build(sums);
  state->counts = MakeCountMethod(method_, counts.shape(), pool_);
  state->counts->Build(counts);
  state->generation = generation;
  (void)s;
  return state;
}

void ShardedOlapEngine::Publish(EngineVersion* next) {
  const EngineVersion* previous =
      version_.exchange(next, std::memory_order_seq_cst);
  domain_->Retire(const_cast<EngineVersion*>(previous));
  publishes_total_->Increment();
  generation_gauge_->Set(static_cast<double>(next->generation));
  domain_->Reclaim();
}

IngestReport ShardedOlapEngine::Load(const std::vector<OlapRecord>& records) {
  IngestReport report;
  const int count = shards();
  // Dense per-shard accumulation first (no lock held): binning is the
  // expensive part and touches no shared state.
  std::vector<NdArray<double>> sums;
  std::vector<NdArray<int64_t>> counts;
  sums.reserve(static_cast<size_t>(count));
  counts.reserve(static_cast<size_t>(count));
  for (int s = 0; s < count; ++s) {
    const Shape sub = ShardShape(s);
    sums.emplace_back(sub, 0.0);
    counts.emplace_back(sub, int64_t{0});
  }
  for (const OlapRecord& record : records) {
    const Result<CellIndex> cell = schema_.CellOf(record.values);
    if (!cell.ok()) {
      ++report.rejected;
      continue;
    }
    CellIndex local = cell.value();
    const int s = ShardOf(local[0]);
    local[0] -= starts_[static_cast<size_t>(s)];
    sums[static_cast<size_t>(s)].at(local) += record.measure;
    counts[static_cast<size_t>(s)].at(local) += 1;
    ++report.accepted;
  }

  const Stopwatch watch;
  MutexLock lock(&writer_mu_);
  const uint64_t generation = next_generation_++;
  auto* next = new EngineVersion();
  next->generation = generation;
  next->shards.reserve(static_cast<size_t>(count));
  for (int s = 0; s < count; ++s) {
    next->shards.push_back(BuildShard(s, sums[static_cast<size_t>(s)],
                                      counts[static_cast<size_t>(s)],
                                      generation));
  }
  Publish(next);
  publish_seconds_->ObserveNanos(watch.ElapsedNanos());
  return report;
}

Status ShardedOlapEngine::LoadCells(const NdArray<double>& cell_sums,
                                    const NdArray<int64_t>& cell_counts) {
  const Shape shape = schema_.CubeShape();
  if (!(cell_sums.shape() == shape) || !(cell_counts.shape() == shape)) {
    return Status::InvalidArgument("LoadCells shape mismatch: want " +
                                   shape.ToString());
  }
  const int count = shards();
  // Slice the dense cube into per-shard arrays (dimension 0), then
  // rebuild and publish exactly as Load does.
  std::vector<NdArray<double>> sums;
  std::vector<NdArray<int64_t>> counts;
  sums.reserve(static_cast<size_t>(count));
  counts.reserve(static_cast<size_t>(count));
  for (int s = 0; s < count; ++s) {
    const Shape sub = ShardShape(s);
    NdArray<double> shard_sums(sub, 0.0);
    NdArray<int64_t> shard_counts(sub, int64_t{0});
    const Box slice = Box::All(sub);
    CellIndex local = slice.lo();
    do {
      CellIndex global = local;
      global[0] += starts_[static_cast<size_t>(s)];
      shard_sums.at(local) = cell_sums.at(global);
      shard_counts.at(local) = cell_counts.at(global);
    } while (NextIndexInBox(slice, local));
    sums.push_back(std::move(shard_sums));
    counts.push_back(std::move(shard_counts));
  }

  const Stopwatch watch;
  MutexLock lock(&writer_mu_);
  const uint64_t generation = next_generation_++;
  auto* next = new EngineVersion();
  next->generation = generation;
  next->shards.reserve(static_cast<size_t>(count));
  for (int s = 0; s < count; ++s) {
    next->shards.push_back(BuildShard(s, sums[static_cast<size_t>(s)],
                                      counts[static_cast<size_t>(s)],
                                      generation));
  }
  Publish(next);
  publish_seconds_->ObserveNanos(watch.ElapsedNanos());
  return Status::Ok();
}

Status ShardedOlapEngine::Insert(const OlapRecord& record) {
  return InsertBatch(std::span<const OlapRecord>(&record, 1));
}

Status ShardedOlapEngine::InsertBatch(std::span<const OlapRecord> records) {
  if (records.empty()) return Status::Ok();
  const Stopwatch watch;
  // Resolve and group outside the lock; any bad record fails the
  // whole batch before anything is cloned.
  struct LocalUpdate {
    CellIndex cell;
    double measure;
  };
  std::vector<std::vector<LocalUpdate>> per_shard(
      static_cast<size_t>(shards()));
  for (const OlapRecord& record : records) {
    RPS_ASSIGN_OR_RETURN(CellIndex cell, schema_.CellOf(record.values));
    const int s = ShardOf(cell[0]);
    cell[0] -= starts_[static_cast<size_t>(s)];
    per_shard[static_cast<size_t>(s)].push_back(
        LocalUpdate{cell, record.measure});
  }

  MutexLock lock(&writer_mu_);
  const EngineVersion* current = version_.load(std::memory_order_acquire);
  const uint64_t generation = next_generation_++;
  auto* next = new EngineVersion();
  next->generation = generation;
  next->shards = current->shards;  // structural sharing by default
  int64_t cloned_cells = 0;
  for (size_t s = 0; s < per_shard.size(); ++s) {
    if (per_shard[s].empty()) continue;
    // Copy-on-write: clone the touched shard, apply the sub-batch to
    // the private clone, swap it into the new version.
    auto replacement = std::make_shared<ShardState>();
    replacement->sums = current->shards[s]->sums->Clone();
    replacement->counts = current->shards[s]->counts->Clone();
    replacement->generation = generation;
    cloned_cells += replacement->sums->Memory().total() +
                    replacement->counts->Memory().total();
    for (const LocalUpdate& update : per_shard[s]) {
      replacement->sums->Add(update.cell, update.measure);
      replacement->counts->Add(update.cell, 1);
    }
    next->shards[s] = std::move(replacement);
  }
  cloned_cells_total_->Increment(cloned_cells);
  Publish(next);
  insert_seconds_->ObserveNanos(watch.ElapsedNanos());
  return Status::Ok();
}

Result<double> ShardedOlapEngine::Sum(const RangeQuery& query) const {
  RPS_ASSIGN_OR_RETURN(const Box range, query.Resolve(schema_));
  const Stopwatch watch;
  EpochDomain::Guard guard(*domain_);
  const EngineVersion* version = version_.load(std::memory_order_acquire);
  const double sum = SumInVersion(*version, range);
  query_seconds_->ObserveNanos(watch.ElapsedNanos());
  return sum;
}

Result<std::vector<double>> ShardedOlapEngine::QueryBatch(
    std::span<const RangeQuery> queries) const {
  std::vector<Box> ranges;
  ranges.reserve(queries.size());
  for (const RangeQuery& query : queries) {
    RPS_ASSIGN_OR_RETURN(const Box range, query.Resolve(schema_));
    ranges.push_back(range);
  }
  const Stopwatch watch;
  EpochDomain::Guard guard(*domain_);
  const EngineVersion* version = version_.load(std::memory_order_acquire);
  std::vector<double> results(ranges.size());
  if (pool_ != nullptr && ranges.size() >= kParallelBatchThreshold) {
    // Fan out across the pool. Workers borrow the caller's pin: the
    // caller stays pinned until ParallelFor joins, so the version
    // cannot be reclaimed while any chunk is in flight.
    pool_->ParallelFor(
        0, static_cast<int64_t>(ranges.size()), 16,
        [&](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) {
            results[static_cast<size_t>(i)] =
                SumInVersion(*version, ranges[static_cast<size_t>(i)]);
          }
        });
  } else {
    for (size_t i = 0; i < ranges.size(); ++i) {
      results[i] = SumInVersion(*version, ranges[i]);
    }
  }
  query_seconds_->ObserveNanos(watch.ElapsedNanos());
  return results;
}

Result<int64_t> ShardedOlapEngine::Count(const RangeQuery& query) const {
  RPS_ASSIGN_OR_RETURN(const Box range, query.Resolve(schema_));
  const Stopwatch watch;
  EpochDomain::Guard guard(*domain_);
  const EngineVersion* version = version_.load(std::memory_order_acquire);
  const int64_t count = CountInVersion(*version, range);
  query_seconds_->ObserveNanos(watch.ElapsedNanos());
  return count;
}

Result<double> ShardedOlapEngine::Average(const RangeQuery& query) const {
  RPS_ASSIGN_OR_RETURN(const Box range, query.Resolve(schema_));
  const Stopwatch watch;
  // One pin, one version load: SUM and COUNT come from the same
  // snapshot, so AVERAGE can never mix generations.
  EpochDomain::Guard guard(*domain_);
  const EngineVersion* version = version_.load(std::memory_order_acquire);
  const int64_t count = CountInVersion(*version, range);
  if (count == 0) {
    return Status::FailedPrecondition("AVERAGE over a range with no records");
  }
  const double average =
      SumInVersion(*version, range) / static_cast<double>(count);
  query_seconds_->ObserveNanos(watch.ElapsedNanos());
  return average;
}

Result<std::vector<double>> ShardedOlapEngine::RollingSum(
    const RangeQuery& query, const std::string& dimension,
    int64_t window) const {
  if (window < 1) return Status::InvalidArgument("window must be >= 1");
  RPS_ASSIGN_OR_RETURN(const int j, schema_.DimensionIndex(dimension));
  RPS_ASSIGN_OR_RETURN(const Box range, query.Resolve(schema_));
  const Stopwatch watch;
  // All windows are answered against one pinned version, so a rolling
  // series is internally consistent even under concurrent writes --
  // something the locked facade also guarantees, but by stalling the
  // writer instead.
  EpochDomain::Guard guard(*domain_);
  const EngineVersion* version = version_.load(std::memory_order_acquire);
  std::vector<double> out;
  out.reserve(static_cast<size_t>(range.Extent(j)));
  for (int64_t p = range.lo()[j]; p <= range.hi()[j]; ++p) {
    CellIndex lo = range.lo();
    CellIndex hi = range.hi();
    lo[j] = std::max(range.lo()[j], p - window + 1);
    hi[j] = p;
    out.push_back(SumInVersion(*version, Box(lo, hi)));
  }
  query_seconds_->ObserveNanos(watch.ElapsedNanos());
  return out;
}

std::string ShardedOlapEngine::HealthJson() const {
  std::string out = "{\"strategy\":\"sharded\",\"method\":\"";
  out += EngineMethodName(method_);
  out += "\",\"shards\":";
  out += std::to_string(shards());
  out += ",\"generation\":";
  out += std::to_string(generation());
  out += ",\"cube_cells\":";
  out += std::to_string(schema_.CubeShape().num_cells());
  out += ",\"epoch\":";
  out += domain_->VarzJson();
  out += '}';
  return out;
}

std::string ShardedOlapEngine::VarzJson() const {
  EpochDomain::Guard guard(*domain_);
  const EngineVersion* version = version_.load(std::memory_order_acquire);
  std::string out = "{\"generation\":";
  out += std::to_string(version->generation);
  out += ",\"shards\":[";
  for (size_t s = 0; s < version->shards.size(); ++s) {
    if (s > 0) out += ',';
    const ShardState& shard = *version->shards[s];
    out += "{\"shard\":";
    out += std::to_string(s);
    out += ",\"rows\":[";
    out += std::to_string(starts_[s]);
    out += ',';
    out += std::to_string(starts_[s + 1] - 1);
    out += "],\"cells\":";
    out += std::to_string(shard.sums->Memory().total());
    out += ",\"generation\":";
    out += std::to_string(shard.generation);
    out += '}';
  }
  out += "],\"epoch\":";
  out += domain_->VarzJson();
  out += '}';
  return out;
}

}  // namespace rps
