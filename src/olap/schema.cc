#include "olap/schema.h"

#include "util/check.h"

namespace rps {

Schema::Schema(std::string measure_name, std::vector<Dimension> dimensions)
    : measure_name_(std::move(measure_name)),
      dimensions_(std::move(dimensions)) {
  RPS_CHECK_MSG(!dimensions_.empty(), "schema needs at least one dimension");
  RPS_CHECK(static_cast<int>(dimensions_.size()) <= kMaxDims);
}

Result<int> Schema::DimensionIndex(const std::string& name) const {
  for (int j = 0; j < num_dimensions(); ++j) {
    if (dimensions_[static_cast<size_t>(j)].name() == name) return j;
  }
  return Status::NotFound("no dimension named '" + name + "'");
}

Shape Schema::CubeShape() const {
  std::vector<int64_t> extents;
  extents.reserve(dimensions_.size());
  for (const Dimension& dim : dimensions_) extents.push_back(dim.size());
  return Shape::FromExtents(extents);
}

Result<CellIndex> Schema::CellOf(const std::vector<FieldValue>& values) const {
  if (static_cast<int>(values.size()) != num_dimensions()) {
    return Status::InvalidArgument(
        "record has " + std::to_string(values.size()) + " values, schema has " +
        std::to_string(num_dimensions()) + " dimensions");
  }
  CellIndex cell = CellIndex::Filled(num_dimensions(), 0);
  for (int j = 0; j < num_dimensions(); ++j) {
    const Dimension& dim = dimensions_[static_cast<size_t>(j)];
    const FieldValue& value = values[static_cast<size_t>(j)];
    Result<int64_t> index = [&]() -> Result<int64_t> {
      if (const auto* i = std::get_if<int64_t>(&value)) {
        return dim.IndexOfInt(*i);
      }
      if (const auto* d = std::get_if<double>(&value)) {
        return dim.IndexOfDouble(*d);
      }
      return dim.IndexOfLabel(std::get<std::string>(value));
    }();
    if (!index.ok()) return index.status();
    cell[j] = index.value();
  }
  return cell;
}

}  // namespace rps
