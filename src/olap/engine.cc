#include "olap/engine.h"

#include <algorithm>

#include "core/hierarchical_rps.h"
#include "obs/event_log.h"
#include "obs/trace.h"
#include "util/stopwatch.h"

namespace rps {

const char* EngineMethodName(EngineMethod method) {
  switch (method) {
    case EngineMethod::kNaive:
      return "naive";
    case EngineMethod::kPrefixSum:
      return "prefix_sum";
    case EngineMethod::kRelativePrefixSum:
      return "relative_prefix_sum";
    case EngineMethod::kFenwick:
      return "fenwick";
    case EngineMethod::kHierarchicalRps:
      return "hierarchical_rps";
  }
  return "?";
}

std::unique_ptr<QueryMethod<double>> MakeDoubleMethod(EngineMethod method,
                                                      const Shape& shape,
                                                      ThreadPool* pool) {
  const NdArray<double> empty(shape, 0.0);
  switch (method) {
    case EngineMethod::kNaive:
      return std::make_unique<NaiveMethod<double>>(empty);
    case EngineMethod::kPrefixSum:
      return std::make_unique<PrefixSumMethod<double>>(empty);
    case EngineMethod::kRelativePrefixSum:
      return std::make_unique<RelativePrefixSum<double>>(empty, pool);
    case EngineMethod::kFenwick:
      return std::make_unique<FenwickMethod<double>>(empty);
    case EngineMethod::kHierarchicalRps:
      return std::make_unique<HierarchicalRps<double>>(empty, pool);
  }
  return nullptr;
}

std::unique_ptr<QueryMethod<int64_t>> MakeCountMethod(EngineMethod method,
                                                      const Shape& shape,
                                                      ThreadPool* pool) {
  const NdArray<int64_t> empty(shape, 0);
  switch (method) {
    case EngineMethod::kNaive:
      return std::make_unique<NaiveMethod<int64_t>>(empty);
    case EngineMethod::kPrefixSum:
      return std::make_unique<PrefixSumMethod<int64_t>>(empty);
    case EngineMethod::kRelativePrefixSum:
      return std::make_unique<RelativePrefixSum<int64_t>>(empty, pool);
    case EngineMethod::kFenwick:
      return std::make_unique<FenwickMethod<int64_t>>(empty);
    case EngineMethod::kHierarchicalRps:
      return std::make_unique<HierarchicalRps<int64_t>>(empty, pool);
  }
  return nullptr;
}

OlapEngine::OlapEngine(Schema schema, EngineMethod method, ThreadPool* pool)
    : schema_(std::move(schema)),
      method_(method),
      pool_(pool),
      sums_(MakeDoubleMethod(method, schema_.CubeShape(), pool)),
      counts_(MakeCountMethod(method, schema_.CubeShape(), pool)) {
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  const obs::Labels labels = {{"method", EngineMethodName(method)}};
  queries_total_ = &registry.GetCounter("rps_engine_queries_total", labels);
  inserts_total_ = &registry.GetCounter("rps_engine_inserts_total", labels);
  query_seconds_ =
      &registry.GetHistogram("rps_engine_query_seconds", labels);
  insert_seconds_ =
      &registry.GetHistogram("rps_engine_insert_seconds", labels);
}

IngestReport OlapEngine::Load(const std::vector<OlapRecord>& records) {
  IngestReport report;
  const Shape shape = schema_.CubeShape();
  NdArray<double> sums(shape, 0.0);
  NdArray<int64_t> counts(shape, 0);
  for (const OlapRecord& record : records) {
    const Result<CellIndex> cell = schema_.CellOf(record.values);
    if (!cell.ok()) {
      ++report.rejected;
      continue;
    }
    sums.at(cell.value()) += record.measure;
    counts.at(cell.value()) += 1;
    ++report.accepted;
  }
  sums_->Build(sums);
  counts_->Build(counts);
  return report;
}

Status OlapEngine::LoadCells(const NdArray<double>& sums,
                             const NdArray<int64_t>& counts) {
  const Shape shape = schema_.CubeShape();
  if (!(sums.shape() == shape) || !(counts.shape() == shape)) {
    return Status::InvalidArgument("LoadCells shape mismatch: want " +
                                   shape.ToString());
  }
  sums_->Build(sums);
  counts_->Build(counts);
  return Status::Ok();
}

Status OlapEngine::Insert(const OlapRecord& record) {
  RPS_ASSIGN_OR_RETURN(const CellIndex cell, schema_.CellOf(record.values));
  obs::RequestScope request(obs::WideEventKind::kUpdate, "engine.insert",
                            EngineMethodName(method_));
  obs::TraceSpan span("engine.insert");
  const Stopwatch watch;
  const UpdateStats sum_stats = sums_->Add(cell, record.measure);
  const UpdateStats count_stats = counts_->Add(cell, 1);
  update_cells_ += sum_stats.total() + count_stats.total();
  insert_seconds_->ObserveNanos(watch.ElapsedNanos());
  inserts_total_->Increment();
  const int64_t primary = sum_stats.primary_cells + count_stats.primary_cells;
  const int64_t aux = sum_stats.aux_cells + count_stats.aux_cells;
  span.SetCells(primary, aux);
  request.set_cells(primary, aux);
  return Status::Ok();
}

Result<double> OlapEngine::Sum(const RangeQuery& query) const {
  RPS_ASSIGN_OR_RETURN(const Box range, query.Resolve(schema_));
  obs::RequestScope request(obs::WideEventKind::kQuery, "engine.sum",
                            EngineMethodName(method_));
  request.set_box_volume(range.NumCells());
  obs::TraceSpan span("engine.sum");
  const Stopwatch watch;
  const double sum = sums_->RangeSum(range);
  query_seconds_->ObserveNanos(watch.ElapsedNanos());
  queries_total_->Increment();
  return sum;
}

Result<std::vector<double>> OlapEngine::QueryBatch(
    std::span<const RangeQuery> queries) const {
  // Resolve everything first so a bad query fails the whole batch
  // before any work runs.
  std::vector<Box> ranges;
  ranges.reserve(queries.size());
  int64_t volume = 0;
  for (const RangeQuery& query : queries) {
    RPS_ASSIGN_OR_RETURN(const Box range, query.Resolve(schema_));
    volume += range.NumCells();
    ranges.push_back(range);
  }
  obs::RequestScope request(obs::WideEventKind::kQuery, "engine.sum_batch",
                            EngineMethodName(method_));
  request.set_box_volume(volume);
  obs::TraceSpan span("engine.sum_batch");
  const Stopwatch watch;
  std::vector<double> results(ranges.size());
  sums_->RangeSumBatch(ranges, results);
  query_seconds_->ObserveNanos(watch.ElapsedNanos());
  queries_total_->Increment(static_cast<int64_t>(queries.size()));
  return results;
}

Result<int64_t> OlapEngine::Count(const RangeQuery& query) const {
  RPS_ASSIGN_OR_RETURN(const Box range, query.Resolve(schema_));
  obs::RequestScope request(obs::WideEventKind::kQuery, "engine.count",
                            EngineMethodName(method_));
  request.set_box_volume(range.NumCells());
  obs::TraceSpan span("engine.count");
  const Stopwatch watch;
  const int64_t count = counts_->RangeSum(range);
  query_seconds_->ObserveNanos(watch.ElapsedNanos());
  queries_total_->Increment();
  return count;
}

Result<double> OlapEngine::Average(const RangeQuery& query) const {
  RPS_ASSIGN_OR_RETURN(const Box range, query.Resolve(schema_));
  obs::RequestScope request(obs::WideEventKind::kQuery, "engine.average",
                            EngineMethodName(method_));
  request.set_box_volume(range.NumCells());
  obs::TraceSpan span("engine.average");
  const Stopwatch watch;
  const int64_t count = counts_->RangeSum(range);
  if (count == 0) {
    return Status::FailedPrecondition("AVERAGE over a range with no records");
  }
  const double average = sums_->RangeSum(range) / static_cast<double>(count);
  query_seconds_->ObserveNanos(watch.ElapsedNanos());
  queries_total_->Increment();
  return average;
}

Result<std::vector<double>> OlapEngine::RollingSum(
    const RangeQuery& query, const std::string& dimension,
    int64_t window) const {
  if (window < 1) return Status::InvalidArgument("window must be >= 1");
  RPS_ASSIGN_OR_RETURN(const int j, schema_.DimensionIndex(dimension));
  RPS_ASSIGN_OR_RETURN(const Box range, query.Resolve(schema_));

  obs::RequestScope request(obs::WideEventKind::kQuery, "engine.rolling_sum",
                            EngineMethodName(method_));
  request.set_box_volume(range.NumCells());
  obs::TraceSpan span("engine.rolling_sum");
  const Stopwatch watch;
  std::vector<double> out;
  out.reserve(static_cast<size_t>(range.Extent(j)));
  for (int64_t p = range.lo()[j]; p <= range.hi()[j]; ++p) {
    CellIndex lo = range.lo();
    CellIndex hi = range.hi();
    lo[j] = std::max(range.lo()[j], p - window + 1);
    hi[j] = p;
    out.push_back(sums_->RangeSum(Box(lo, hi)));
  }
  query_seconds_->ObserveNanos(watch.ElapsedNanos());
  queries_total_->Increment();
  return out;
}

std::string OlapEngine::HealthJson() const {
  std::string out = "{\"method\":\"";
  out += EngineMethodName(method_);
  out += "\",\"dims\":";
  out += std::to_string(schema_.CubeShape().dims());
  out += ",\"cube_cells\":";
  out += std::to_string(schema_.CubeShape().num_cells());
  out += ",\"update_cells\":";
  out += std::to_string(update_cells_);
  out += '}';
  return out;
}

Result<Box> OlapEngine::ResolveQuery(const RangeQuery& query) const {
  return query.Resolve(schema_);
}

Result<double> OlapEngine::SumOverCells(const Box& range) const {
  if (!range.Within(schema_.CubeShape())) {
    return Status::OutOfRange("box outside the cube");
  }
  return sums_->RangeSum(range);
}

Result<int64_t> OlapEngine::CountOverCells(const Box& range) const {
  if (!range.Within(schema_.CubeShape())) {
    return Status::OutOfRange("box outside the cube");
  }
  return counts_->RangeSum(range);
}

Result<std::vector<double>> OlapEngine::RollingAverage(
    const RangeQuery& query, const std::string& dimension,
    int64_t window) const {
  if (window < 1) return Status::InvalidArgument("window must be >= 1");
  RPS_ASSIGN_OR_RETURN(const int j, schema_.DimensionIndex(dimension));
  RPS_ASSIGN_OR_RETURN(const Box range, query.Resolve(schema_));

  std::vector<double> out;
  out.reserve(static_cast<size_t>(range.Extent(j)));
  for (int64_t p = range.lo()[j]; p <= range.hi()[j]; ++p) {
    CellIndex lo = range.lo();
    CellIndex hi = range.hi();
    lo[j] = std::max(range.lo()[j], p - window + 1);
    hi[j] = p;
    const Box slab(lo, hi);
    const int64_t count = counts_->RangeSum(slab);
    out.push_back(count == 0
                      ? 0.0
                      : sums_->RangeSum(slab) / static_cast<double>(count));
  }
  return out;
}

}  // namespace rps
