// Thread-safe facade over OlapEngine.
//
// The core structures are single-writer (updates mutate RP and
// overlay cells in place); this wrapper serializes writers and lets
// readers proceed concurrently with a shared mutex -- the standard
// OLAP pattern of many analysts querying while a loader streams
// updates.

#ifndef RPS_OLAP_CONCURRENT_ENGINE_H_
#define RPS_OLAP_CONCURRENT_ENGINE_H_

#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "olap/engine.h"
#include "olap/group_by.h"

namespace rps {

class ConcurrentOlapEngine {
 public:
  ConcurrentOlapEngine(Schema schema, EngineMethod method)
      : engine_(std::move(schema), method) {}

  const Schema& schema() const { return engine_.schema(); }

  IngestReport Load(const std::vector<OlapRecord>& records) {
    std::unique_lock lock(mutex_);
    return engine_.Load(records);
  }

  Status Insert(const OlapRecord& record) {
    std::unique_lock lock(mutex_);
    return engine_.Insert(record);
  }

  Result<double> Sum(const RangeQuery& query) const {
    std::shared_lock lock(mutex_);
    return engine_.Sum(query);
  }

  Result<int64_t> Count(const RangeQuery& query) const {
    std::shared_lock lock(mutex_);
    return engine_.Count(query);
  }

  Result<double> Average(const RangeQuery& query) const {
    std::shared_lock lock(mutex_);
    return engine_.Average(query);
  }

  Result<std::vector<double>> RollingSum(const RangeQuery& query,
                                         const std::string& dimension,
                                         int64_t window) const {
    std::shared_lock lock(mutex_);
    return engine_.RollingSum(query, dimension, window);
  }

  Result<std::vector<GroupRow>> GroupBySlots(
      const RangeQuery& query, const std::string& dimension) const {
    std::shared_lock lock(mutex_);
    return GroupBy(engine_, query, dimension);
  }

 private:
  mutable std::shared_mutex mutex_;
  OlapEngine engine_;
};

}  // namespace rps

#endif  // RPS_OLAP_CONCURRENT_ENGINE_H_
