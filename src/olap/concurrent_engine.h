// Thread-safe facade over OlapEngine.
//
// The core structures are single-writer (updates mutate RP and
// overlay cells in place); this wrapper serializes writers and lets
// readers proceed concurrently with a shared mutex -- the standard
// OLAP pattern of many analysts querying while a loader streams
// updates.

#ifndef RPS_OLAP_CONCURRENT_ENGINE_H_
#define RPS_OLAP_CONCURRENT_ENGINE_H_

#include <span>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "olap/engine.h"
#include "olap/group_by.h"
#include "util/annotations.h"
#include "util/mutex.h"
#include "util/stopwatch.h"

namespace rps {

class ConcurrentOlapEngine final : public OlapServingEngine {
 public:
  /// `pool` is forwarded to the wrapped OlapEngine; builds and large
  /// update scatters run on it while this facade holds the writer
  /// lock, so readers still observe atomic transitions.
  ConcurrentOlapEngine(Schema schema, EngineMethod method,
                       ThreadPool* pool = &ThreadPool::Global())
      : schema_(std::move(schema)), engine_(schema_, method, pool) {
    obs::MetricRegistry& registry = obs::MetricRegistry::Global();
    const obs::Labels labels = {{"method", EngineMethodName(method)}};
    query_seconds_ =
        &registry.GetHistogram("rps_concurrent_engine_query_seconds", labels);
    insert_seconds_ =
        &registry.GetHistogram("rps_concurrent_engine_insert_seconds", labels);
  }

  const char* strategy() const override { return "locked"; }

  /// The schema is immutable after construction, so it is served from
  /// an unguarded copy: schema reads never touch the engine lock.
  const Schema& schema() const override { return schema_; }

  IngestReport Load(const std::vector<OlapRecord>& records) override {
    WriterLock lock(&mutex_);
    return engine_.Load(records);
  }

  Status LoadCells(const NdArray<double>& sums,
                   const NdArray<int64_t>& counts) override {
    WriterLock lock(&mutex_);
    return engine_.LoadCells(sums, counts);
  }

  Status Insert(const OlapRecord& record) override {
    const Stopwatch watch;  // includes writer-lock wait
    WriterLock lock(&mutex_);
    const Status status = engine_.Insert(record);
    insert_seconds_->ObserveNanos(watch.ElapsedNanos());
    return status;
  }

  /// Applies the batch under one writer-lock acquisition. Validates
  /// every record before touching the structures so a bad record
  /// fails the whole batch without partial effects.
  Status InsertBatch(std::span<const OlapRecord> records) override {
    const Stopwatch watch;  // includes writer-lock wait
    WriterLock lock(&mutex_);
    for (const OlapRecord& record : records) {
      RPS_RETURN_IF_ERROR(schema_.CellOf(record.values).status());
    }
    for (const OlapRecord& record : records) {
      RPS_RETURN_IF_ERROR(engine_.Insert(record));
    }
    insert_seconds_->ObserveNanos(watch.ElapsedNanos());
    return Status::Ok();
  }

  Result<double> Sum(const RangeQuery& query) const override {
    const Stopwatch watch;  // includes reader-lock wait
    ReaderLock lock(&mutex_);
    Result<double> result = engine_.Sum(query);
    query_seconds_->ObserveNanos(watch.ElapsedNanos());
    return result;
  }

  /// Batched SUMs under one reader-lock acquisition (and one facade
  /// latency observation for the whole batch).
  Result<std::vector<double>> QueryBatch(
      std::span<const RangeQuery> queries) const override {
    const Stopwatch watch;  // includes reader-lock wait
    ReaderLock lock(&mutex_);
    Result<std::vector<double>> result = engine_.QueryBatch(queries);
    query_seconds_->ObserveNanos(watch.ElapsedNanos());
    return result;
  }

  Result<int64_t> Count(const RangeQuery& query) const override {
    const Stopwatch watch;
    ReaderLock lock(&mutex_);
    Result<int64_t> result = engine_.Count(query);
    query_seconds_->ObserveNanos(watch.ElapsedNanos());
    return result;
  }

  Result<double> Average(const RangeQuery& query) const override {
    const Stopwatch watch;
    ReaderLock lock(&mutex_);
    Result<double> result = engine_.Average(query);
    query_seconds_->ObserveNanos(watch.ElapsedNanos());
    return result;
  }

  Result<std::vector<double>> RollingSum(const RangeQuery& query,
                                         const std::string& dimension,
                                         int64_t window) const override {
    const Stopwatch watch;
    ReaderLock lock(&mutex_);
    Result<std::vector<double>> result =
        engine_.RollingSum(query, dimension, window);
    query_seconds_->ObserveNanos(watch.ElapsedNanos());
    return result;
  }

  /// Health-source payload for the exposition server; takes a reader
  /// lock so it is safe against concurrent writers.
  std::string HealthJson() const override {
    ReaderLock lock(&mutex_);
    return engine_.HealthJson();
  }

  Result<std::vector<GroupRow>> GroupBySlots(
      const RangeQuery& query, const std::string& dimension) const {
    const Stopwatch watch;
    ReaderLock lock(&mutex_);
    Result<std::vector<GroupRow>> result = GroupBy(engine_, query, dimension);
    query_seconds_->ObserveNanos(watch.ElapsedNanos());
    return result;
  }

 private:
  // Unguarded on purpose: written once in the constructor, read-only
  // afterwards (the wrapped engine holds its own copy for resolves).
  const Schema schema_;
  mutable SharedMutex mutex_{"ConcurrentOlapEngine.mutex"};
  OlapEngine engine_ GUARDED_BY(mutex_);
  // Facade-level latency, lock wait included (labels:
  // method="<EngineMethodName>"). The wrapped OlapEngine separately
  // reports lock-free rps_engine_* timings.
  obs::Histogram* query_seconds_;
  obs::Histogram* insert_seconds_;
};

}  // namespace rps

#endif  // RPS_OLAP_CONCURRENT_ENGINE_H_
