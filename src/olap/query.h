// Range queries over named dimensions in raw value space.
//
// A RangeQuery holds per-dimension predicates ("age from 37 to 52",
// "date over the past three months" -- the paper's Section 1
// examples). Unconstrained dimensions default to their full range.
// Resolve() maps the predicates through the schema's dimensions to an
// inclusive cell Box.

#ifndef RPS_OLAP_QUERY_H_
#define RPS_OLAP_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "cube/box.h"
#include "olap/schema.h"
#include "util/status.h"

namespace rps {

class RangeQuery {
 public:
  RangeQuery() = default;

  /// Constrains an Integer dimension to raw values [lo, hi].
  RangeQuery& WhereIntBetween(const std::string& dimension, int64_t lo,
                              int64_t hi);

  /// Constrains a Binned dimension to numeric values [lo, hi)
  /// (hi exclusive: bins are half-open).
  RangeQuery& WhereDoubleBetween(const std::string& dimension, double lo,
                                 double hi);

  /// Constrains a Categorical dimension to one label.
  RangeQuery& WhereLabelIs(const std::string& dimension,
                           const std::string& label);

  /// Constrains a Categorical dimension to a contiguous label range
  /// [from, to] in declaration order (e.g. months "Feb".."May").
  RangeQuery& WhereLabelBetween(const std::string& dimension,
                                const std::string& from,
                                const std::string& to);

  /// Resolves all predicates against `schema` to a cell Box.
  /// Unconstrained dimensions span their full extent. Fails on unknown
  /// dimensions, kind mismatches, out-of-domain bounds or empty
  /// ranges.
  Result<Box> Resolve(const Schema& schema) const;

 private:
  struct Predicate {
    std::string dimension;
    enum class Kind { kIntRange, kDoubleRange, kLabel, kLabelRange } kind;
    int64_t int_lo = 0, int_hi = 0;
    double double_lo = 0, double_hi = 0;
    std::string label_lo, label_hi;
  };
  std::vector<Predicate> predicates_;
};

}  // namespace rps

#endif  // RPS_OLAP_QUERY_H_
