#include "olap/group_by.h"

#include <algorithm>

#include "olap/engine.h"

namespace rps {

Result<std::vector<GroupRow>> GroupBy(const OlapEngine& engine,
                                      const RangeQuery& query,
                                      const std::string& dimension) {
  RPS_ASSIGN_OR_RETURN(const int j,
                       engine.schema().DimensionIndex(dimension));
  RPS_ASSIGN_OR_RETURN(const Box range, engine.ResolveQuery(query));
  const Dimension& dim =
      engine.schema().dimensions()[static_cast<size_t>(j)];

  std::vector<GroupRow> rows;
  rows.reserve(static_cast<size_t>(range.Extent(j)));
  for (int64_t p = range.lo()[j]; p <= range.hi()[j]; ++p) {
    CellIndex lo = range.lo();
    CellIndex hi = range.hi();
    lo[j] = p;
    hi[j] = p;
    const Box slot(lo, hi);
    GroupRow row;
    row.slot = dim.SlotLabel(p);
    RPS_ASSIGN_OR_RETURN(row.sum, engine.SumOverCells(slot));
    RPS_ASSIGN_OR_RETURN(row.count, engine.CountOverCells(slot));
    rows.push_back(std::move(row));
  }
  return rows;
}

Result<CrossTab> CrossTabulate(const OlapEngine& engine,
                               const RangeQuery& query,
                               const std::string& row_dimension,
                               const std::string& col_dimension) {
  RPS_ASSIGN_OR_RETURN(const int r,
                       engine.schema().DimensionIndex(row_dimension));
  RPS_ASSIGN_OR_RETURN(const int c,
                       engine.schema().DimensionIndex(col_dimension));
  if (r == c) {
    return Status::InvalidArgument(
        "cross-tab needs two distinct dimensions");
  }
  RPS_ASSIGN_OR_RETURN(const Box range, engine.ResolveQuery(query));
  const Dimension& row_dim =
      engine.schema().dimensions()[static_cast<size_t>(r)];
  const Dimension& col_dim =
      engine.schema().dimensions()[static_cast<size_t>(c)];

  CrossTab tab;
  for (int64_t p = range.lo()[r]; p <= range.hi()[r]; ++p) {
    tab.row_labels.push_back(row_dim.SlotLabel(p));
  }
  for (int64_t q = range.lo()[c]; q <= range.hi()[c]; ++q) {
    tab.col_labels.push_back(col_dim.SlotLabel(q));
  }
  tab.sums.resize(tab.row_labels.size(),
                  std::vector<double>(tab.col_labels.size(), 0.0));
  for (int64_t p = range.lo()[r]; p <= range.hi()[r]; ++p) {
    for (int64_t q = range.lo()[c]; q <= range.hi()[c]; ++q) {
      CellIndex lo = range.lo();
      CellIndex hi = range.hi();
      lo[r] = p;
      hi[r] = p;
      lo[c] = q;
      hi[c] = q;
      RPS_ASSIGN_OR_RETURN(
          tab.sums[static_cast<size_t>(p - range.lo()[r])]
                  [static_cast<size_t>(q - range.lo()[c])],
          engine.SumOverCells(Box(lo, hi)));
    }
  }
  return tab;
}

Result<std::vector<GroupRow>> TopSlotsBySum(const OlapEngine& engine,
                                            const RangeQuery& query,
                                            const std::string& dimension,
                                            int64_t limit) {
  RPS_ASSIGN_OR_RETURN(std::vector<GroupRow> rows,
                       GroupBy(engine, query, dimension));
  std::stable_sort(rows.begin(), rows.end(),
                   [](const GroupRow& a, const GroupRow& b) {
                     return a.sum > b.sum;
                   });
  if (limit > 0 && static_cast<int64_t>(rows.size()) > limit) {
    rows.resize(static_cast<size_t>(limit));
  }
  return rows;
}

}  // namespace rps
