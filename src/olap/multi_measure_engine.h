// Multi-measure OLAP engine: several measure attributes over one set
// of dimensions (e.g. SALES and COST per age x day), each backed by
// its own range-sum structure, sharing a single COUNT structure.
// Supports per-measure SUM/AVERAGE and ratios of sums (e.g. margin =
// SUM(profit)/SUM(sales)) -- all reductions to the paper's range-sum
// primitive.

#ifndef RPS_OLAP_MULTI_MEASURE_ENGINE_H_
#define RPS_OLAP_MULTI_MEASURE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "olap/engine.h"

namespace rps {

/// One input record: dimension values (schema order) + one value per
/// measure (declaration order).
struct MultiMeasureRecord {
  std::vector<FieldValue> values;
  std::vector<double> measures;
};

class MultiMeasureEngine {
 public:
  /// `measure_names` must be nonempty and unique.
  MultiMeasureEngine(std::vector<std::string> measure_names,
                     std::vector<Dimension> dimensions, EngineMethod method);

  const Schema& schema() const { return schema_; }
  const std::vector<std::string>& measure_names() const {
    return measure_names_;
  }

  /// Bulk loads, replacing contents; wrong-arity or out-of-domain
  /// records are counted and skipped.
  IngestReport Load(const std::vector<MultiMeasureRecord>& records);

  /// Point-inserts one record into every measure structure.
  Status Insert(const MultiMeasureRecord& record);

  /// SUM of `measure` over the query range.
  Result<double> Sum(const std::string& measure,
                     const RangeQuery& query) const;

  /// Records in the query range.
  Result<int64_t> Count(const RangeQuery& query) const;

  /// SUM(measure)/COUNT over the range; fails on empty ranges.
  Result<double> Average(const std::string& measure,
                         const RangeQuery& query) const;

  /// SUM(numerator)/SUM(denominator) over the range; fails when the
  /// denominator sums to zero.
  Result<double> RatioOfSums(const std::string& numerator,
                             const std::string& denominator,
                             const RangeQuery& query) const;

 private:
  Result<int> MeasureIndex(const std::string& measure) const;

  Schema schema_;
  std::vector<std::string> measure_names_;
  std::vector<std::unique_ptr<QueryMethod<double>>> sums_;
  std::unique_ptr<QueryMethod<int64_t>> counts_;
};

}  // namespace rps

#endif  // RPS_OLAP_MULTI_MEASURE_ENGINE_H_
