#include "olap/csv_loader.h"

#include <charconv>
#include <string_view>

namespace rps {
namespace {

std::vector<std::string_view> SplitLine(std::string_view line) {
  std::vector<std::string_view> fields;
  size_t start = 0;
  while (true) {
    const size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return fields;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

bool ParseInt(std::string_view s, int64_t* out) {
  s = Trim(s);
  if (s.empty()) return false;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool ParseDouble(std::string_view s, double* out) {
  s = Trim(s);
  if (s.empty()) return false;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

}  // namespace

Result<CsvParseReport> ParseCsv(const Schema& schema, const std::string& text,
                                bool has_header) {
  CsvParseReport report;
  const size_t expected_fields =
      static_cast<size_t>(schema.num_dimensions()) + 1;

  size_t pos = 0;
  int64_t line_number = 0;
  bool header_pending = has_header;
  // pos < size(): a trailing newline does not produce a final empty
  // line.
  while (pos < text.size()) {
    const size_t newline = text.find('\n', pos);
    const std::string_view line =
        std::string_view(text).substr(pos, newline == std::string::npos
                                               ? std::string::npos
                                               : newline - pos);
    pos = (newline == std::string::npos) ? text.size() + 1 : newline + 1;
    ++line_number;

    if (Trim(line).empty()) {
      ++report.lines_skipped;
      continue;
    }
    if (header_pending) {
      header_pending = false;
      continue;
    }

    const std::vector<std::string_view> fields = SplitLine(line);
    if (fields.size() != expected_fields) {
      report.errors.push_back("line " + std::to_string(line_number) + ": " +
                              std::to_string(fields.size()) + " fields, want " +
                              std::to_string(expected_fields));
      continue;
    }

    OlapRecord record;
    record.values.reserve(static_cast<size_t>(schema.num_dimensions()));
    bool line_ok = true;
    for (int j = 0; j < schema.num_dimensions() && line_ok; ++j) {
      const Dimension& dim =
          schema.dimensions()[static_cast<size_t>(j)];
      const std::string_view field = fields[static_cast<size_t>(j)];
      if (dim.is_integer()) {
        int64_t value;
        if (ParseInt(field, &value)) {
          record.values.emplace_back(value);
        } else {
          report.errors.push_back("line " + std::to_string(line_number) +
                                  ": bad integer for '" + dim.name() + "'");
          line_ok = false;
        }
      } else if (dim.is_binned()) {
        double value;
        if (ParseDouble(field, &value)) {
          record.values.emplace_back(value);
        } else {
          report.errors.push_back("line " + std::to_string(line_number) +
                                  ": bad number for '" + dim.name() + "'");
          line_ok = false;
        }
      } else {
        record.values.emplace_back(std::string(Trim(field)));
      }
    }
    if (!line_ok) continue;
    if (!ParseDouble(fields.back(), &record.measure)) {
      report.errors.push_back("line " + std::to_string(line_number) +
                              ": bad measure value");
      continue;
    }
    report.records.push_back(std::move(record));
    ++report.lines_parsed;
  }
  return report;
}

}  // namespace rps
