#include "olap/query.h"

#include <algorithm>
#include <cmath>

namespace rps {

RangeQuery& RangeQuery::WhereIntBetween(const std::string& dimension,
                                        int64_t lo, int64_t hi) {
  Predicate p;
  p.dimension = dimension;
  p.kind = Predicate::Kind::kIntRange;
  p.int_lo = lo;
  p.int_hi = hi;
  predicates_.push_back(std::move(p));
  return *this;
}

RangeQuery& RangeQuery::WhereDoubleBetween(const std::string& dimension,
                                           double lo, double hi) {
  Predicate p;
  p.dimension = dimension;
  p.kind = Predicate::Kind::kDoubleRange;
  p.double_lo = lo;
  p.double_hi = hi;
  predicates_.push_back(std::move(p));
  return *this;
}

RangeQuery& RangeQuery::WhereLabelIs(const std::string& dimension,
                                     const std::string& label) {
  return WhereLabelBetween(dimension, label, label);
}

RangeQuery& RangeQuery::WhereLabelBetween(const std::string& dimension,
                                          const std::string& from,
                                          const std::string& to) {
  Predicate p;
  p.dimension = dimension;
  p.kind = Predicate::Kind::kLabelRange;
  p.label_lo = from;
  p.label_hi = to;
  predicates_.push_back(std::move(p));
  return *this;
}

Result<Box> RangeQuery::Resolve(const Schema& schema) const {
  const int d = schema.num_dimensions();
  CellIndex lo = CellIndex::Filled(d, 0);
  CellIndex hi = CellIndex::Filled(d, 0);
  for (int j = 0; j < d; ++j) {
    hi[j] = schema.dimensions()[static_cast<size_t>(j)].size() - 1;
  }

  for (const Predicate& p : predicates_) {
    RPS_ASSIGN_OR_RETURN(const int j, schema.DimensionIndex(p.dimension));
    const Dimension& dim = schema.dimensions()[static_cast<size_t>(j)];
    int64_t index_lo = 0;
    int64_t index_hi = 0;
    switch (p.kind) {
      case Predicate::Kind::kIntRange: {
        if (p.int_lo > p.int_hi) {
          return Status::InvalidArgument("empty range on '" + p.dimension +
                                         "'");
        }
        RPS_ASSIGN_OR_RETURN(index_lo, dim.IndexOfInt(p.int_lo));
        RPS_ASSIGN_OR_RETURN(index_hi, dim.IndexOfInt(p.int_hi));
        break;
      }
      case Predicate::Kind::kDoubleRange: {
        if (!(p.double_lo < p.double_hi)) {
          return Status::InvalidArgument("empty range on '" + p.dimension +
                                         "'");
        }
        RPS_ASSIGN_OR_RETURN(index_lo, dim.IndexOfDouble(p.double_lo));
        // hi is exclusive: the last included bin is the one containing
        // the largest value strictly below hi. Nudging by resolving
        // hi and stepping back when hi falls on a bin boundary is
        // fragile with floats; instead resolve the midpoint of the
        // half-open interval's final bin by probing hi - epsilon via
        // the bin of lo plus arithmetic on the dimension is not
        // exposed, so resolve hi and subtract one bin when hi lands
        // exactly on a boundary value that maps out of range.
        Result<int64_t> hi_bin = dim.IndexOfDouble(p.double_hi);
        if (hi_bin.ok()) {
          index_hi = hi_bin.value();
          // hi exclusive: if hi is exactly the lower edge of its bin,
          // the bin itself is excluded. Detect via lo-edge
          // reconstruction: SlotLabel is informational only, so use a
          // tolerance-free check through the previous bin's upper
          // edge: bins are uniform, so compare against the bin of the
          // immediately smaller representable value.
          const double prev = std::nextafter(p.double_hi, p.double_lo);
          RPS_ASSIGN_OR_RETURN(const int64_t prev_bin,
                               dim.IndexOfDouble(prev));
          index_hi = prev_bin;
        } else {
          // hi at or beyond the domain top: clamp to the last bin.
          const double prev = std::nextafter(p.double_hi, p.double_lo);
          RPS_ASSIGN_OR_RETURN(index_hi, dim.IndexOfDouble(prev));
        }
        break;
      }
      case Predicate::Kind::kLabel:
      case Predicate::Kind::kLabelRange: {
        RPS_ASSIGN_OR_RETURN(index_lo, dim.IndexOfLabel(p.label_lo));
        RPS_ASSIGN_OR_RETURN(index_hi, dim.IndexOfLabel(p.label_hi));
        break;
      }
    }
    if (index_lo > index_hi) {
      return Status::InvalidArgument("empty resolved range on '" +
                                     p.dimension + "'");
    }
    // Multiple predicates on one dimension intersect.
    lo[j] = std::max(lo[j], index_lo);
    hi[j] = std::min(hi[j], index_hi);
    if (lo[j] > hi[j]) {
      return Status::InvalidArgument("predicates on '" + p.dimension +
                                     "' have empty intersection");
    }
  }
  return Box(lo, hi);
}

}  // namespace rps
