// The OLAP engine: records in, near-current range aggregates out.
//
// Ties together the whole reproduction: a Schema describes the cube;
// records are binned into SUM and COUNT cubes; a pluggable
// QueryMethod (naive / prefix sum / relative prefix sum / Fenwick)
// answers range aggregates; single-record inserts are point updates,
// the workload the paper motivates ("companies ... tracking current
// sales data, for which new information may arrive on a daily
// basis"). AVERAGE = SUM/COUNT and rolling windows follow Ho et al.'s
// reduction to range sums (Section 2).

#ifndef RPS_OLAP_ENGINE_H_
#define RPS_OLAP_ENGINE_H_

#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/fenwick_method.h"
#include "core/naive_method.h"
#include "core/prefix_sum_method.h"
#include "core/relative_prefix_sum.h"
#include "cube/nd_array.h"
#include "obs/metrics.h"
#include "olap/query.h"
#include "olap/schema.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace rps {

/// Which range-sum structure backs the engine.
enum class EngineMethod {
  kNaive,
  kPrefixSum,
  kRelativePrefixSum,
  kFenwick,
  kHierarchicalRps,
};

const char* EngineMethodName(EngineMethod method);

/// Factories for the underlying structures, shared by the engines.
/// The returned structure is built over an all-zero cube of `shape`.
/// `pool` (borrowed, must outlive the structure; may be null for
/// strictly serial execution) drives parallel builds and large update
/// scatters in the pool-aware methods; the others ignore it.
std::unique_ptr<QueryMethod<double>> MakeDoubleMethod(
    EngineMethod method, const Shape& shape,
    ThreadPool* pool = &ThreadPool::Global());
std::unique_ptr<QueryMethod<int64_t>> MakeCountMethod(
    EngineMethod method, const Shape& shape,
    ThreadPool* pool = &ThreadPool::Global());

/// One input record: raw dimension values (schema order) + measure.
struct OlapRecord {
  std::vector<FieldValue> values;
  double measure = 0;
};

/// Outcome of a bulk ingest.
struct IngestReport {
  int64_t accepted = 0;
  int64_t rejected = 0;  // out-of-domain records (skipped)
};

/// Uniform read/write surface over the thread-safe serving engines:
/// the single-lock facade (olap/concurrent_engine.h) and the sharded
/// epoch-versioned engine (olap/sharded_engine.h). Drivers, tools and
/// tests route between the two through MakeServingEngine and this
/// interface, so a deployment can switch concurrency strategies
/// without touching call sites.
///
/// All methods are safe to call from any thread. Readers of the
/// sharded implementation never block; the locked implementation
/// serializes writers against readers.
class OlapServingEngine {
 public:
  virtual ~OlapServingEngine() = default;

  /// Strategy name for logs and health payloads ("locked" or
  /// "sharded").
  virtual const char* strategy() const = 0;

  virtual const Schema& schema() const = 0;

  /// Bulk loads `records`, replacing current contents atomically with
  /// respect to queries.
  virtual IngestReport Load(const std::vector<OlapRecord>& records) = 0;

  /// Bulk loads dense cube contents directly (cell space rather than
  /// record space), replacing current contents atomically. This is
  /// the recovery path for durable wrappers: WAL replay yields cells,
  /// and cells cannot be inverted back to schema field values. Both
  /// arrays must have shape schema().CubeShape().
  virtual Status LoadCells(const NdArray<double>& sums,
                           const NdArray<int64_t>& counts) = 0;

  /// Inserts one record. Fails on out-of-domain values.
  virtual Status Insert(const OlapRecord& record) = 0;

  /// Inserts many records as one atomic transition: queries observe
  /// either none or all of the batch. Fails (applying nothing) if any
  /// record is out of domain. Batching is how writers amortize their
  /// per-publication overhead.
  virtual Status InsertBatch(std::span<const OlapRecord> records) = 0;

  virtual Result<double> Sum(const RangeQuery& query) const = 0;
  virtual Result<std::vector<double>> QueryBatch(
      std::span<const RangeQuery> queries) const = 0;
  virtual Result<int64_t> Count(const RangeQuery& query) const = 0;
  virtual Result<double> Average(const RangeQuery& query) const = 0;
  virtual Result<std::vector<double>> RollingSum(const RangeQuery& query,
                                                 const std::string& dimension,
                                                 int64_t window) const = 0;

  /// Health-source payload for the exposition server.
  virtual std::string HealthJson() const = 0;
};

/// Routing factory: `shards` == 0 selects the single-lock facade,
/// `shards` >= 1 the sharded engine with that many shards, and
/// `shards` < 0 the sharded engine with its default shard count (the
/// thread-pool worker count). Defined in sharded_engine.cc.
std::unique_ptr<OlapServingEngine> MakeServingEngine(
    Schema schema, EngineMethod method, int shards,
    ThreadPool* pool = &ThreadPool::Global());

class OlapEngine {
 public:
  /// An empty engine over `schema` using `method`. `pool` backs the
  /// builds (Load) and large update scatters of pool-aware methods;
  /// pass null for strictly serial execution.
  OlapEngine(Schema schema, EngineMethod method,
             ThreadPool* pool = &ThreadPool::Global());

  const Schema& schema() const { return schema_; }
  EngineMethod method() const { return method_; }
  ThreadPool* thread_pool() const { return pool_; }

  /// Bulk loads `records`, replacing current contents. Out-of-domain
  /// records are counted and skipped.
  IngestReport Load(const std::vector<OlapRecord>& records);

  /// Rebuilds both structures from dense cube contents (see
  /// OlapServingEngine::LoadCells). Shapes must match the schema.
  Status LoadCells(const NdArray<double>& sums,
                   const NdArray<int64_t>& counts);

  /// Inserts one record (point update on SUM and COUNT structures);
  /// the cost is the paper's update cost. Fails on out-of-domain
  /// values.
  Status Insert(const OlapRecord& record);

  /// Total touched cells across both structures since construction
  /// or ResetUpdateCost().
  int64_t cumulative_update_cells() const { return update_cells_; }
  void ResetUpdateCost() { update_cells_ = 0; }

  /// SUM of the measure over the query range.
  Result<double> Sum(const RangeQuery& query) const;

  /// SUMs for a batch of queries in one call, sharing per-block work
  /// between queries through QueryMethod::RangeSumBatch. Fails (and
  /// answers nothing) if any query does not resolve against the
  /// schema; otherwise returns one sum per query, in order.
  Result<std::vector<double>> QueryBatch(
      std::span<const RangeQuery> queries) const;

  /// Number of records in the query range.
  Result<int64_t> Count(const RangeQuery& query) const;

  /// AVERAGE = SUM / COUNT; error when the range is empty of records.
  Result<double> Average(const RangeQuery& query) const;

  /// Rolling sums along `dimension`: for every index position p of
  /// that dimension, the SUM over the query range restricted to
  /// dimension slots [p - window + 1, p] (clamped at 0). This is the
  /// paper's ROLLING SUM operator.
  Result<std::vector<double>> RollingSum(const RangeQuery& query,
                                         const std::string& dimension,
                                         int64_t window) const;

  /// Rolling AVERAGE over the same windows (0 where no records).
  Result<std::vector<double>> RollingAverage(const RangeQuery& query,
                                             const std::string& dimension,
                                             int64_t window) const;

  /// One JSON object describing the engine for /healthz health
  /// sources (obs/expo_server.h): method, cube size, update volume.
  std::string HealthJson() const;

  /// Lower-level access for composed operators (GROUP BY, cross-tabs):
  /// resolve a query to a cell Box and aggregate over explicit boxes.
  Result<Box> ResolveQuery(const RangeQuery& query) const;
  Result<double> SumOverCells(const Box& range) const;
  Result<int64_t> CountOverCells(const Box& range) const;

 private:
  Schema schema_;
  EngineMethod method_;
  ThreadPool* pool_;
  std::unique_ptr<QueryMethod<double>> sums_;
  std::unique_ptr<QueryMethod<int64_t>> counts_;
  int64_t update_cells_ = 0;
  // Registry-owned per-method observability (labels:
  // method="<EngineMethodName>"); pointers are stable for the process
  // lifetime. Every read query observes query_seconds_ and each
  // Insert observes insert_seconds_ plus a TraceSpan with the
  // touched-cell breakdown.
  obs::Counter* queries_total_;
  obs::Counter* inserts_total_;
  obs::Histogram* query_seconds_;
  obs::Histogram* insert_seconds_;
};

}  // namespace rps

#endif  // RPS_OLAP_ENGINE_H_
