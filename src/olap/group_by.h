// GROUP BY over a range query: per-slot aggregates along one or two
// dimensions, computed as a series of range sums (the data cube's
// cross-tab use from Gray et al., built on the paper's range-sum
// primitive).

#ifndef RPS_OLAP_GROUP_BY_H_
#define RPS_OLAP_GROUP_BY_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace rps {

class OlapEngine;
class RangeQuery;

/// One output row of a 1-dimensional GROUP BY.
struct GroupRow {
  std::string slot;  // human-readable slot label
  double sum = 0;
  int64_t count = 0;

  double average() const {
    return count == 0 ? 0 : sum / static_cast<double>(count);
  }
};

/// SUM/COUNT of `query`'s range grouped by each slot of `dimension`
/// (restricted to the query's range on that dimension). One range sum
/// per slot: O(extent * 2^d) lookups with the RPS/PS engines.
Result<std::vector<GroupRow>> GroupBy(const OlapEngine& engine,
                                      const RangeQuery& query,
                                      const std::string& dimension);

/// Two-dimensional cross-tab: rows x columns of SUMs, with labels.
struct CrossTab {
  std::vector<std::string> row_labels;
  std::vector<std::string> col_labels;
  // sums[r][c] for row r, column c.
  std::vector<std::vector<double>> sums;
};

Result<CrossTab> CrossTabulate(const OlapEngine& engine,
                               const RangeQuery& query,
                               const std::string& row_dimension,
                               const std::string& col_dimension);

/// The `limit` group rows with the largest SUM, descending (ties keep
/// slot order). limit <= 0 returns every row sorted.
Result<std::vector<GroupRow>> TopSlotsBySum(const OlapEngine& engine,
                                            const RangeQuery& query,
                                            const std::string& dimension,
                                            int64_t limit);

}  // namespace rps

#endif  // RPS_OLAP_GROUP_BY_H_
