// OLAP schema: one measure attribute aggregated over functional
// attributes (paper, Section 1: "Certain attributes are chosen to be
// measure attributes ... Other attributes are selected as dimensions").

#ifndef RPS_OLAP_SCHEMA_H_
#define RPS_OLAP_SCHEMA_H_

#include <string>
#include <variant>
#include <vector>

#include "cube/dimension.h"
#include "cube/index.h"
#include "util/status.h"

namespace rps {

/// A raw attribute value in a record: integer (Integer dimensions),
/// numeric (Binned dimensions) or label (Categorical dimensions).
using FieldValue = std::variant<int64_t, double, std::string>;

class Schema {
 public:
  /// `dimensions` define the cube axes in order; `measure_name` is
  /// documentation (e.g. "SALES").
  Schema(std::string measure_name, std::vector<Dimension> dimensions);

  const std::string& measure_name() const { return measure_name_; }
  const std::vector<Dimension>& dimensions() const { return dimensions_; }
  int num_dimensions() const { return static_cast<int>(dimensions_.size()); }

  /// Index of the dimension named `name`, or error.
  Result<int> DimensionIndex(const std::string& name) const;

  /// Shape of the cube this schema describes.
  Shape CubeShape() const;

  /// Maps one record's dimension values (in schema order) to a cell.
  /// Fails if a value is of the wrong kind or out of range.
  Result<CellIndex> CellOf(const std::vector<FieldValue>& values) const;

 private:
  std::string measure_name_;
  std::vector<Dimension> dimensions_;
};

}  // namespace rps

#endif  // RPS_OLAP_SCHEMA_H_
