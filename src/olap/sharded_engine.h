// Sharded, epoch-versioned OLAP engine with wait-free readers.
//
// The single-lock facade (olap/concurrent_engine.h) re-couples the
// costs the paper decouples: one writer holding the exclusive lock
// stalls every reader for the whole update. This engine removes the
// reader/writer coupling entirely:
//
//   * The cube is partitioned along dimension 0 -- the highest-stride
//     dimension under row-major linearization -- into S contiguous
//     slices ("shards"), each backed by its own SUM and COUNT
//     structures over the slice's sub-shape.
//   * All shard state is immutable once published. A single atomic
//     pointer holds the current EngineVersion: a generation counter
//     plus one reference per shard. Readers pin an epoch
//     (util/epoch.h), load the pointer once, and answer any number of
//     range sums against a frozen, cross-shard-consistent snapshot --
//     no locks, no reference-count traffic, wait-free.
//   * Writers serialize among themselves on a plain mutex, clone only
//     the shards a batch touches (QueryMethod::Clone -- copy-on-
//     write), apply the batch to the clones, publish a new version
//     with one atomic pointer swap, and retire the old version into
//     the epoch domain. Readers never observe a torn batch: a query
//     sees the shard set of exactly one version.
//
// Cross-shard queries intersect the resolved box with each slice and
// merge the per-shard partial sums; large batches fan out over the
// ThreadPool. Updates cost one clone of the touched shards per batch,
// which is why writers batch: the clone is amortized across the
// batch, and untouched shards are shared structurally between
// versions.

#ifndef RPS_OLAP_SHARDED_ENGINE_H_
#define RPS_OLAP_SHARDED_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/method.h"
#include "obs/metrics.h"
#include "olap/engine.h"
#include "util/annotations.h"
#include "util/epoch.h"
#include "util/mutex.h"

namespace rps {

class ShardedOlapEngine final : public OlapServingEngine {
 public:
  /// An empty engine over `schema` using `method`, split into
  /// `shards` slices (clamped to [1, extent of dimension 0];
  /// <= 0 means the thread-pool default). The method must be
  /// clonable (every built-in EngineMethod is); this is checked once
  /// here. `domain` defaults to the process-wide epoch domain; tests
  /// may pass an isolated one.
  ShardedOlapEngine(Schema schema, EngineMethod method, int shards,
                    ThreadPool* pool = &ThreadPool::Global(),
                    EpochDomain* domain = &EpochDomain::Global());

  /// Unpublishes and retires the last version. Callers must ensure no
  /// reader is still inside a query (as with any engine teardown).
  ~ShardedOlapEngine() override;

  const char* strategy() const override { return "sharded"; }
  const Schema& schema() const override { return schema_; }
  EngineMethod method() const { return method_; }
  int shards() const { return static_cast<int>(starts_.size()) - 1; }

  /// Generation of the currently published version (monotonic; starts
  /// at 1 for the empty engine and advances once per publication).
  uint64_t generation() const;

  IngestReport Load(const std::vector<OlapRecord>& records) override;
  Status LoadCells(const NdArray<double>& sums,
                   const NdArray<int64_t>& counts) override;
  Status Insert(const OlapRecord& record) override;
  Status InsertBatch(std::span<const OlapRecord> records) override;

  Result<double> Sum(const RangeQuery& query) const override;
  Result<std::vector<double>> QueryBatch(
      std::span<const RangeQuery> queries) const override;
  Result<int64_t> Count(const RangeQuery& query) const override;
  Result<double> Average(const RangeQuery& query) const override;
  Result<std::vector<double>> RollingSum(const RangeQuery& query,
                                         const std::string& dimension,
                                         int64_t window) const override;

  std::string HealthJson() const override;

  /// One JSON object per shard (row range, cells, generation) plus
  /// the engine totals -- the /varz shard table.
  std::string VarzJson() const;

 private:
  /// One slice of the cube: immutable once published.
  struct ShardState {
    std::unique_ptr<QueryMethod<double>> sums;
    std::unique_ptr<QueryMethod<int64_t>> counts;
    /// Generation that last rewrote this shard (<= the version's).
    uint64_t generation = 0;
  };

  /// A consistent whole-engine snapshot. Unaffected shards are shared
  /// (by shared_ptr) with the previous version; readers never touch
  /// the reference counts -- only writers clone/share, under the
  /// writer mutex, and the epoch domain frees retired versions.
  struct EngineVersion {
    uint64_t generation = 0;
    std::vector<std::shared_ptr<const ShardState>> shards;
  };

  /// Shard index owning cube row `row0` (dimension-0 coordinate).
  int ShardOf(int64_t row0) const;
  /// Sub-shape of shard `s` (dimension 0 trimmed to the slice).
  Shape ShardShape(int s) const;
  /// Sum of `range` across the shards of `version`. `range` must lie
  /// within the cube.
  double SumInVersion(const EngineVersion& version, const Box& range) const;
  int64_t CountInVersion(const EngineVersion& version,
                         const Box& range) const;
  /// Builds fresh shard states from dense per-shard arrays.
  std::shared_ptr<const ShardState> BuildShard(
      int s, const NdArray<double>& sums, const NdArray<int64_t>& counts,
      uint64_t generation) const;
  /// Swaps in `next` and retires the previous version. Requires
  /// writer_mu_.
  void Publish(EngineVersion* next) REQUIRES(writer_mu_);

  const Schema schema_;
  const EngineMethod method_;
  ThreadPool* const pool_;
  EpochDomain* const domain_;
  /// Slice boundaries on dimension 0: shard s covers rows
  /// [starts_[s], starts_[s+1]); size() == shards() + 1.
  std::vector<int64_t> starts_;

  /// The published version. Written only under writer_mu_ (a seq_cst
  /// swap); read by pinned readers with an acquire load. Never null.
  std::atomic<const EngineVersion*> version_{nullptr};

  Mutex writer_mu_{"ShardedOlapEngine.writer_mu"};
  /// Monotonic publication counter (matches the published version's
  /// generation while writer_mu_ is held).
  uint64_t next_generation_ GUARDED_BY(writer_mu_) = 1;

  // Registry-owned observability (labels: method=..., plus
  // shards=... on the gauges).
  obs::Histogram* query_seconds_;
  obs::Histogram* insert_seconds_;
  obs::Histogram* publish_seconds_;
  obs::Counter* publishes_total_;
  obs::Counter* cloned_cells_total_;
  obs::Gauge* shard_count_;
  obs::Gauge* generation_gauge_;
};

}  // namespace rps

#endif  // RPS_OLAP_SHARDED_ENGINE_H_
