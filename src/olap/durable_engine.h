// Durable ingest for the serving engines.
//
// Wraps any OlapServingEngine (the single-lock facade or the sharded
// epoch-versioned engine) with a write-ahead log so that accepted
// records survive a process death. The on-disk layout reuses the
// storage layer's generation discipline (storage/durable_rps.h):
//   CURRENT      -- manifest naming the live generation N
//   base-N.log   -- dense cube contents at checkpoint N, one WAL
//                   record per nonzero cell ({sum, count} payload)
//   wal-N.log    -- per-record {measure, +1} deltas since base N
// The base file reuses the WAL record format (crc | coords | payload)
// rather than a separate snapshot codec: recovery is a single replay
// loop either way, and cells -- not schema field values -- are the
// natural replay unit (field values cannot be recovered from cells,
// which is why OlapServingEngine::LoadCells exists).
//
// Two durability modes (DurableOptions, shared with DurableRps):
// per-record pays one barrier per accepted record under a lock --
// the baseline -- while group commit funnels concurrent writers
// through a GroupCommitWal: one barrier per batch of concurrent
// writers, writers block until their record is durable, and
// `rps_tool bench --durable` quantifies the difference.
//
// Checkpoints are pipelined exactly like DurableRps's: writers are
// quiesced only while the log rotates to the next generation and the
// dense mirrors are copied; the base write, fsync and manifest commit
// run with ingest flowing into the rotated log. Crash recovery folds
// orphan logs above the live generation forward into a fresh
// checkpoint.
//
// Bulk Load() replaces cube contents in memory immediately and then
// checkpoints; the loaded records are durable once that checkpoint
// commits (single inserts are durable before Insert returns).

#ifndef RPS_OLAP_DURABLE_ENGINE_H_
#define RPS_OLAP_DURABLE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cube/nd_array.h"
#include "olap/engine.h"
#include "storage/durable_rps.h"
#include "storage/group_commit.h"
#include "storage/wal.h"
#include "util/annotations.h"
#include "util/mutex.h"
#include "util/retry.h"

namespace rps {

class DurableOlapEngine final : public OlapServingEngine {
 public:
  /// One logged cell update: the measure delta and record-count
  /// delta. Also the base-file payload, where the fields hold the
  /// cell's absolute contents instead.
  struct CellDelta {
    double sum = 0;
    int64_t count = 0;
  };
  static_assert(sizeof(CellDelta) == 16);

  /// Creates a fresh durable engine over an empty cube in `directory`
  /// (which must exist): commits generation 1 (empty base + empty
  /// log). `shards` routes exactly like MakeServingEngine.
  static Result<std::unique_ptr<DurableOlapEngine>> Create(
      Schema schema, EngineMethod method, int shards,
      const std::string& directory, const DurableOptions& options = {},
      ThreadPool* pool = &ThreadPool::Global());

  /// Restores from `directory`. The schema/method/shards configuration
  /// is not persisted -- the caller must pass the same schema the
  /// directory was written under (record geometry is validated).
  /// `replayed_records` (optional out) reports how many log records
  /// were folded in on top of the base.
  static Result<std::unique_ptr<DurableOlapEngine>> Open(
      Schema schema, EngineMethod method, int shards,
      const std::string& directory, const DurableOptions& options = {},
      ThreadPool* pool = &ThreadPool::Global(),
      int64_t* replayed_records = nullptr);

  ~DurableOlapEngine() override;

  const char* strategy() const override { return "durable"; }
  const Schema& schema() const override { return schema_; }
  /// The wrapped serving engine (queries go straight to it).
  const OlapServingEngine& inner() const { return *inner_; }

  IngestReport Load(const std::vector<OlapRecord>& records) override;
  Status LoadCells(const NdArray<double>& sums,
                   const NdArray<int64_t>& counts) override;
  Status Insert(const OlapRecord& record) override;
  Status InsertBatch(std::span<const OlapRecord> records) override;

  Result<double> Sum(const RangeQuery& query) const override {
    return inner_->Sum(query);
  }
  Result<std::vector<double>> QueryBatch(
      std::span<const RangeQuery> queries) const override {
    return inner_->QueryBatch(queries);
  }
  Result<int64_t> Count(const RangeQuery& query) const override {
    return inner_->Count(query);
  }
  Result<double> Average(const RangeQuery& query) const override {
    return inner_->Average(query);
  }
  Result<std::vector<double>> RollingSum(const RangeQuery& query,
                                         const std::string& dimension,
                                         int64_t window) const override {
    return inner_->RollingSum(query, dimension, window);
  }

  /// Persists the current cube as the next generation (pipelined;
  /// see the header comment). Safe to call from a background thread
  /// while writers ingest.
  Status Checkpoint();

  /// Durability + inner-engine health in one payload:
  /// {"durable": {...}, "engine": <inner HealthJson>}.
  std::string HealthJson() const override;

  int64_t generation() const {
    MutexLock lock(&state_mu_);
    return generation_;
  }
  int64_t wal_generation() const {
    MutexLock lock(&state_mu_);
    return wal_generation_;
  }
  bool checkpoint_in_flight() const {
    MutexLock lock(&state_mu_);
    return checkpoint_in_flight_;
  }
  bool group_commit() const { return group_wal_ != nullptr; }
  int64_t wal_records() const;

  void set_retry_policy(const RetryPolicy& policy);
  /// Test hook: runs between a checkpoint's rotation (writers live
  /// again) and its base write (see DurableRps's equivalent).
  void set_checkpoint_write_hook(std::function<void()> hook) {
    checkpoint_write_hook_ = std::move(hook);
  }

 private:
  DurableOlapEngine(Schema schema, EngineMethod method, int shards,
                    std::string directory, const DurableOptions& options,
                    ThreadPool* pool);

  static std::string BasePathFor(const std::string& directory,
                                 int64_t generation);
  static std::string WalPathFor(const std::string& directory,
                                int64_t generation);

  /// Logs `count` parallel cells/deltas with the mode's front end
  /// (one group barrier, or per-record barriers under the log lock).
  Status AppendLogged(const CellIndex* cells, const CellDelta* deltas,
                      int64_t count);
  /// Writes `directory/base-<generation>.log` from dense contents:
  /// every nonzero cell as one record, one durable batch.
  Status WriteBase(const NdArray<double>& sums,
                   const NdArray<int64_t>& counts, int64_t generation);

  void BeginApply();
  void EndApply();
  /// Writer-quiesced rotation to generation `next`; on success the
  /// active log is wal-(next). Called with gate_mu_ held, writers
  /// drained.
  Status RotateTo(int64_t next) REQUIRES(gate_mu_);
  void RemoveStaleGenerations();

  const Schema schema_;
  const DurableOptions options_;
  const std::string directory_;
  std::unique_ptr<OlapServingEngine> inner_;

  /// Apply gate (see DurableRps::SyncState): Adds hold it across
  /// log-append -> memory-apply; rotation drains it.
  Mutex gate_mu_{"DurableOlapEngine.gate"};
  CondVar gate_cv_;
  int64_t active_appends_ GUARDED_BY(gate_mu_) = 0;
  bool rotating_ GUARDED_BY(gate_mu_) = false;

  /// Serializes whole Checkpoint() calls.
  Mutex checkpoint_mu_{"DurableOlapEngine.checkpoint"};  // check_guards: standalone

  mutable Mutex state_mu_{"DurableOlapEngine.state"};
  int64_t generation_ GUARDED_BY(state_mu_) = 1;
  int64_t wal_generation_ GUARDED_BY(state_mu_) = 1;
  bool checkpoint_in_flight_ GUARDED_BY(state_mu_) = false;

  /// Dense absolute cube contents, mirrored on every accepted write;
  /// what checkpoints persist. (The inner engine cannot be read back
  /// cell-by-cell without range queries, so the mirror is the
  /// authoritative checkpoint source.)
  mutable Mutex mirror_mu_{"DurableOlapEngine.mirror"};
  NdArray<double> mirror_sums_ GUARDED_BY(mirror_mu_);
  NdArray<int64_t> mirror_counts_ GUARDED_BY(mirror_mu_);

  /// Exactly one of these is live, per options_.group_commit.
  mutable Mutex wal_mu_{"DurableOlapEngine.wal"};
  std::optional<WriteAheadLog> wal_ GUARDED_BY(wal_mu_);
  std::unique_ptr<GroupCommitWal> group_wal_;

  RetryPolicy retry_policy_;
  std::function<void()> checkpoint_write_hook_;
};

}  // namespace rps

#endif  // RPS_OLAP_DURABLE_ENGINE_H_
