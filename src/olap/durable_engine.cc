#include "olap/durable_engine.h"

#include <cstring>
#include <filesystem>
#include <utility>

#include "cube/box.h"
#include "storage/fault_env.h"

namespace rps {
namespace {

/// Decodes a replayed record's payload.
DurableOlapEngine::CellDelta DecodeDelta(const WalRecord& record) {
  DurableOlapEngine::CellDelta delta;
  std::memcpy(&delta, record.payload.data(), sizeof(delta));
  return delta;
}

}  // namespace

DurableOlapEngine::DurableOlapEngine(Schema schema, EngineMethod method,
                                     int shards, std::string directory,
                                     const DurableOptions& options,
                                     ThreadPool* pool)
    : schema_(std::move(schema)),
      options_(options),
      directory_(std::move(directory)),
      inner_(MakeServingEngine(schema_, method, shards, pool)),
      mirror_sums_(schema_.CubeShape(), 0.0),
      mirror_counts_(schema_.CubeShape(), int64_t{0}) {}

DurableOlapEngine::~DurableOlapEngine() = default;

std::string DurableOlapEngine::BasePathFor(const std::string& directory,
                                           int64_t generation) {
  return directory + "/base-" + std::to_string(generation) + ".log";
}

std::string DurableOlapEngine::WalPathFor(const std::string& directory,
                                          int64_t generation) {
  return directory + "/wal-" + std::to_string(generation) + ".log";
}

Result<std::unique_ptr<DurableOlapEngine>> DurableOlapEngine::Create(
    Schema schema, EngineMethod method, int shards,
    const std::string& directory, const DurableOptions& options,
    ThreadPool* pool) {
  std::unique_ptr<DurableOlapEngine> engine(
      new DurableOlapEngine(std::move(schema), method, shards, directory,
                            options, pool));
  const int dims = engine->schema_.CubeShape().dims();
  // Generation 1: an empty base (created so Open never guesses about
  // a missing file) and an empty log.
  {
    RPS_ASSIGN_OR_RETURN(
        WriteAheadLog base,
        WriteAheadLog::OpenForAppend(BasePathFor(directory, 1), dims,
                                     sizeof(CellDelta)));
    RPS_RETURN_IF_ERROR(base.Reset());
    RPS_RETURN_IF_ERROR(base.Close());
  }
  RPS_ASSIGN_OR_RETURN(
      WriteAheadLog wal,
      WriteAheadLog::OpenForAppend(WalPathFor(directory, 1), dims,
                                   sizeof(CellDelta)));
  RPS_RETURN_IF_ERROR(wal.Reset());
  RPS_RETURN_IF_ERROR(fault_env::SyncDir(directory, "current"));
  RPS_RETURN_IF_ERROR(durable_internal::CommitManifest(directory, 1));
  if (options.group_commit) {
    engine->group_wal_ =
        std::make_unique<GroupCommitWal>(std::move(wal), options.group);
  } else {
    MutexLock lock(&engine->wal_mu_);
    engine->wal_.emplace(std::move(wal));
  }
  return engine;
}

Result<std::unique_ptr<DurableOlapEngine>> DurableOlapEngine::Open(
    Schema schema, EngineMethod method, int shards,
    const std::string& directory, const DurableOptions& options,
    ThreadPool* pool, int64_t* replayed_records) {
  std::unique_ptr<DurableOlapEngine> engine(
      new DurableOlapEngine(std::move(schema), method, shards, directory,
                            options, pool));
  const Shape shape = engine->schema_.CubeShape();
  const int dims = shape.dims();
  RPS_ASSIGN_OR_RETURN(
      const int64_t generation,
      durable_internal::ReadManifest(directory + "/CURRENT"));

  NdArray<double> sums(shape, 0.0);
  NdArray<int64_t> counts(shape, int64_t{0});
  // Base: absolute cell contents at checkpoint time. A committed
  // generation's base was fully durable before the manifest moved, so
  // damage here is real corruption, not a crash artifact.
  RPS_ASSIGN_OR_RETURN(
      const WalReplay base,
      WriteAheadLog::Replay(BasePathFor(directory, generation), dims,
                            sizeof(CellDelta)));
  if (base.tail_truncated) {
    return Status::IoError("corrupt base file for committed generation " +
                           std::to_string(generation));
  }
  for (const WalRecord& record : base.records) {
    if (!shape.Contains(record.cell)) {
      return Status::IoError("base record outside cube");
    }
    const CellDelta value = DecodeDelta(record);
    sums.at(record.cell) = value.sum;
    counts.at(record.cell) = value.count;
  }

  // Live log plus any orphan logs above it (crashed pipelined
  // checkpoints), replayed as deltas.
  int64_t replayed = 0;
  RPS_ASSIGN_OR_RETURN(
      WalReplay live,
      WriteAheadLog::Replay(WalPathFor(directory, generation), dims,
                            sizeof(CellDelta)));
  int64_t top = generation;
  bool orphan_records = false;
  bool torn = live.tail_truncated;
  std::vector<WalReplay> logs;
  logs.push_back(std::move(live));
  for (int64_t g = generation + 1;
       std::filesystem::exists(WalPathFor(directory, g)); ++g) {
    RPS_ASSIGN_OR_RETURN(
        WalReplay orphan,
        WriteAheadLog::Replay(WalPathFor(directory, g), dims,
                              sizeof(CellDelta)));
    orphan_records = orphan_records || !orphan.records.empty();
    torn = torn || orphan.tail_truncated;
    logs.push_back(std::move(orphan));
    top = g;
  }
  for (const WalReplay& log : logs) {
    for (const WalRecord& record : log.records) {
      if (!shape.Contains(record.cell)) {
        return Status::IoError("WAL record outside cube");
      }
      const CellDelta delta = DecodeDelta(record);
      sums.at(record.cell) += delta.sum;
      counts.at(record.cell) += delta.count;
      ++replayed;
    }
  }

  std::optional<WriteAheadLog> opened;
  if (orphan_records) {
    // Fold forward: collapse base + logs into a fresh generation.
    const int64_t next = top + 1;
    RPS_RETURN_IF_ERROR(RetryWithBackoff(engine->retry_policy_, [&] {
      return engine->WriteBase(sums, counts, next);
    }));
    RPS_ASSIGN_OR_RETURN(
        WriteAheadLog wal,
        WriteAheadLog::OpenForAppend(WalPathFor(directory, next), dims,
                                     sizeof(CellDelta)));
    RPS_RETURN_IF_ERROR(wal.Reset());
    RPS_RETURN_IF_ERROR(fault_env::SyncDir(directory, "current"));
    RPS_RETURN_IF_ERROR(durable_internal::CommitManifest(directory, next));
    {
      MutexLock lock(&engine->state_mu_);
      engine->generation_ = next;
      engine->wal_generation_ = next;
    }
    opened.emplace(std::move(wal));
  } else {
    if (torn) {
      RPS_RETURN_IF_ERROR(WriteAheadLog::TruncateTorn(
          WalPathFor(directory, generation), logs.front().valid_bytes));
    }
    RPS_ASSIGN_OR_RETURN(
        WriteAheadLog wal,
        WriteAheadLog::OpenForAppend(WalPathFor(directory, generation), dims,
                                     sizeof(CellDelta)));
    {
      MutexLock lock(&engine->state_mu_);
      engine->generation_ = generation;
      engine->wal_generation_ = generation;
    }
    opened.emplace(std::move(wal));
  }

  RPS_RETURN_IF_ERROR(engine->inner_->LoadCells(sums, counts));
  {
    MutexLock lock(&engine->mirror_mu_);
    engine->mirror_sums_ = std::move(sums);
    engine->mirror_counts_ = std::move(counts);
  }
  if (options.group_commit) {
    engine->group_wal_ = std::make_unique<GroupCommitWal>(
        std::move(*opened), options.group);
  } else {
    MutexLock lock(&engine->wal_mu_);
    engine->wal_.emplace(std::move(*opened));
  }
  engine->RemoveStaleGenerations();
  if (replayed_records != nullptr) *replayed_records = replayed;
  return engine;
}

int64_t DurableOlapEngine::wal_records() const {
  if (group_wal_ != nullptr) return group_wal_->appended();
  MutexLock lock(&wal_mu_);
  return wal_->appended();
}

void DurableOlapEngine::set_retry_policy(const RetryPolicy& policy) {
  retry_policy_ = policy;
  if (group_wal_ != nullptr) group_wal_->set_retry_policy(policy);
}

void DurableOlapEngine::BeginApply() {
  MutexLock lock(&gate_mu_);
  while (rotating_) gate_cv_.Wait(gate_mu_);
  ++active_appends_;
}

void DurableOlapEngine::EndApply() {
  MutexLock lock(&gate_mu_);
  --active_appends_;
  gate_cv_.NotifyAll();
}

Status DurableOlapEngine::AppendLogged(const CellIndex* cells,
                                       const CellDelta* deltas,
                                       int64_t count) {
  if (group_wal_ != nullptr) {
    if (count == 1) return group_wal_->Append(cells[0], &deltas[0]);
    std::vector<WalAppend> appends(static_cast<size_t>(count));
    for (int64_t i = 0; i < count; ++i) {
      appends[static_cast<size_t>(i)] = WalAppend{&cells[i], &deltas[i]};
    }
    return group_wal_->AppendMany(appends.data(), count);
  }
  // Per-record baseline: one barrier per record, writers serialized
  // on the log lock.
  MutexLock lock(&wal_mu_);
  const RetryPolicy policy = retry_policy_;
  WriteAheadLog* const wal = &*wal_;
  for (int64_t i = 0; i < count; ++i) {
    RPS_RETURN_IF_ERROR(RetryWithBackoff(policy, [&] {
      return wal->Append(cells[i], &deltas[i], options_.group.barrier);
    }));
  }
  return Status::Ok();
}

Status DurableOlapEngine::Insert(const OlapRecord& record) {
  RPS_ASSIGN_OR_RETURN(const CellIndex cell, schema_.CellOf(record.values));
  const CellDelta delta{record.measure, 1};
  BeginApply();
  const Status appended = AppendLogged(&cell, &delta, 1);
  if (!appended.ok()) {
    EndApply();
    return appended;
  }
  {
    MutexLock lock(&mirror_mu_);
    mirror_sums_.at(cell) += record.measure;
    mirror_counts_.at(cell) += 1;
  }
  const Status inserted = inner_->Insert(record);
  EndApply();
  return inserted;
}

Status DurableOlapEngine::InsertBatch(std::span<const OlapRecord> records) {
  if (records.empty()) return Status::Ok();
  // Resolve everything first so a bad record fails the batch before a
  // single byte is logged.
  std::vector<CellIndex> cells;
  std::vector<CellDelta> deltas;
  cells.reserve(records.size());
  deltas.reserve(records.size());
  for (const OlapRecord& record : records) {
    RPS_ASSIGN_OR_RETURN(CellIndex cell, schema_.CellOf(record.values));
    cells.push_back(std::move(cell));
    deltas.push_back(CellDelta{record.measure, 1});
  }
  BeginApply();
  const Status appended = AppendLogged(cells.data(), deltas.data(),
                                       static_cast<int64_t>(cells.size()));
  if (!appended.ok()) {
    EndApply();
    return appended;
  }
  {
    MutexLock lock(&mirror_mu_);
    for (size_t i = 0; i < cells.size(); ++i) {
      mirror_sums_.at(cells[i]) += deltas[i].sum;
      mirror_counts_.at(cells[i]) += deltas[i].count;
    }
  }
  const Status inserted = inner_->InsertBatch(records);
  EndApply();
  return inserted;
}

IngestReport DurableOlapEngine::Load(const std::vector<OlapRecord>& records) {
  const Shape shape = schema_.CubeShape();
  IngestReport report;
  NdArray<double> sums(shape, 0.0);
  NdArray<int64_t> counts(shape, int64_t{0});
  for (const OlapRecord& record : records) {
    const Result<CellIndex> cell = schema_.CellOf(record.values);
    if (!cell.ok()) {
      ++report.rejected;
      continue;
    }
    sums.at(cell.value()) += record.measure;
    counts.at(cell.value()) += 1;
    ++report.accepted;
  }
  // Shapes are ours, so a failure here is checkpoint I/O trouble; the
  // in-memory load still happened (see LoadCells).
  (void)LoadCells(sums, counts);
  return report;
}

Status DurableOlapEngine::LoadCells(const NdArray<double>& sums,
                                    const NdArray<int64_t>& counts) {
  const Shape shape = schema_.CubeShape();
  if (!(sums.shape() == shape) || !(counts.shape() == shape)) {
    return Status::InvalidArgument("LoadCells shape mismatch: want " +
                                   shape.ToString());
  }
  {
    MutexLock gate(&gate_mu_);
    rotating_ = true;
    while (active_appends_ > 0) gate_cv_.Wait(gate_mu_);
    {
      MutexLock lock(&mirror_mu_);
      mirror_sums_ = sums;
      mirror_counts_ = counts;
    }
    const Status loaded = inner_->LoadCells(sums, counts);
    rotating_ = false;
    gate_cv_.NotifyAll();
    RPS_RETURN_IF_ERROR(loaded);
  }
  // Memory is loaded either way; the replacement is durable once this
  // checkpoint commits (documented Load semantics).
  return Checkpoint();
}

Status DurableOlapEngine::RotateTo(int64_t next) {
  RPS_ASSIGN_OR_RETURN(
      WriteAheadLog log,
      WriteAheadLog::OpenForAppend(WalPathFor(directory_, next),
                                   schema_.CubeShape().dims(),
                                   sizeof(CellDelta)));
  RPS_RETURN_IF_ERROR(log.Reset());
  Status rotated;
  if (group_wal_ != nullptr) {
    rotated = group_wal_->Rotate(std::move(log));
  } else {
    MutexLock lock(&wal_mu_);
    rotated = wal_->Close();
    wal_ = std::move(log);
  }
  // The swap happened even if closing the frozen log failed; either
  // way the active log is wal-(next) now.
  {
    MutexLock lock(&state_mu_);
    wal_generation_ = next;
  }
  return rotated;
}

Status DurableOlapEngine::WriteBase(const NdArray<double>& sums,
                                    const NdArray<int64_t>& counts,
                                    int64_t generation) {
  const Shape shape = sums.shape();
  RPS_ASSIGN_OR_RETURN(
      WriteAheadLog base,
      WriteAheadLog::OpenForAppend(BasePathFor(directory_, generation),
                                   shape.dims(), sizeof(CellDelta)));
  RPS_RETURN_IF_ERROR(base.Reset());
  // Every nonzero cell as one record; their coordinates are the
  // replay key, so order is irrelevant.
  std::vector<CellIndex> cells;
  std::vector<CellDelta> values;
  const Box all = Box::All(shape);
  CellIndex index = all.lo();
  do {
    const double sum = sums.at(index);
    const int64_t count = counts.at(index);
    if (sum != 0.0 || count != 0) {
      cells.push_back(index);
      values.push_back(CellDelta{sum, count});
    }
  } while (NextIndexInBox(all, index));
  if (!cells.empty()) {
    std::vector<WalAppend> appends(cells.size());
    for (size_t i = 0; i < cells.size(); ++i) {
      appends[i] = WalAppend{&cells[i], &values[i]};
    }
    RPS_RETURN_IF_ERROR(base.AppendBatch(appends.data(),
                                         static_cast<int64_t>(appends.size()),
                                         WalBarrier::kSync));
  }
  return base.Close();
}

Status DurableOlapEngine::Checkpoint() {
  MutexLock checkpoint(&checkpoint_mu_);
  int64_t next = 0;
  NdArray<double> sums;
  NdArray<int64_t> counts;
  {
    MutexLock gate(&gate_mu_);
    rotating_ = true;
    while (active_appends_ > 0) gate_cv_.Wait(gate_mu_);
    {
      MutexLock lock(&state_mu_);
      next = wal_generation_ + 1;
    }
    const Status rotation = RotateTo(next);
    if (rotation.ok()) {
      MutexLock lock(&state_mu_);
      checkpoint_in_flight_ = true;
    }
    if (rotation.ok()) {
      MutexLock lock(&mirror_mu_);
      sums = mirror_sums_;
      counts = mirror_counts_;
    }
    rotating_ = false;
    gate_cv_.NotifyAll();
    if (!rotation.ok()) return rotation;
  }

  // Writers are live again; persist the frozen copy.
  if (checkpoint_write_hook_) checkpoint_write_hook_();
  Status status = RetryWithBackoff(
      retry_policy_, [&] { return WriteBase(sums, counts, next); });
  if (status.ok()) status = fault_env::SyncDir(directory_, "current");
  if (status.ok()) {
    status = durable_internal::CommitManifest(directory_, next);
  }
  {
    MutexLock lock(&state_mu_);
    checkpoint_in_flight_ = false;
    if (status.ok()) generation_ = next;
  }
  if (status.ok()) RemoveStaleGenerations();
  return status;
}

void DurableOlapEngine::RemoveStaleGenerations() {
  const int64_t live = generation();
  const int64_t active_log = wal_generation();
  for (int64_t stale = live - 1; stale >= 1; --stale) {
    const bool had_base =
        std::filesystem::exists(BasePathFor(directory_, stale));
    const bool had_wal =
        std::filesystem::exists(WalPathFor(directory_, stale));
    if (!had_base && !had_wal) break;
    (void)fault_env::Remove(BasePathFor(directory_, stale));
    (void)fault_env::Remove(WalPathFor(directory_, stale));
  }
  if (active_log == live) {
    (void)fault_env::Remove(BasePathFor(directory_, live + 1));
    (void)fault_env::Remove(WalPathFor(directory_, live + 1));
  }
  (void)fault_env::Remove(directory_ + "/CURRENT.tmp");
}

std::string DurableOlapEngine::HealthJson() const {
  int64_t committed_generation = 0;
  int64_t log_generation = 0;
  bool in_flight = false;
  {
    MutexLock lock(&state_mu_);
    committed_generation = generation_;
    log_generation = wal_generation_;
    in_flight = checkpoint_in_flight_;
  }
  std::string out = "{\"durable\":{\"generation\":";
  out += std::to_string(committed_generation);
  out += ",\"wal_records\":";
  out += std::to_string(wal_records());
  out += ",\"mode\":\"";
  out += group_wal_ != nullptr ? "group_commit" : "per_record";
  out += "\",\"wal_generation\":";
  out += std::to_string(log_generation);
  out += ",\"checkpoint_in_flight\":";
  out += in_flight ? "true" : "false";
  out += ",\"commit_queue_depth\":";
  out += std::to_string(group_wal_ != nullptr ? group_wal_->queue_depth()
                                              : 0);
  out += "},\"engine\":";
  out += inner_->HealthJson();
  out += '}';
  return out;
}

}  // namespace rps
