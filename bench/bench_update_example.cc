// Experiment E3 -- the worked update example of Section 4.2
// (Figures 4 and 15): updating cell A[1,1] of the 9x9 cube touches 16
// cells under RPS (4 RP + 12 overlay) vs 64 cells under the prefix
// sum method. Regenerates both numbers from live structures and
// sweeps every cell of the example cube for context.

#include <cstdio>

#include "bench/table.h"
#include "core/cost_model.h"
#include "core/prefix_sum_method.h"
#include "core/relative_prefix_sum.h"
#include "workload/data_gen.h"

namespace rps {
namespace {

void WorkedExample() {
  bench::PrintHeader("E3 / Figures 4+15",
                     "update of A[1,1] on the paper's 9x9 cube, k=3");
  const Shape shape{9, 9};
  const NdArray<int64_t> cube = UniformCube(shape, 0, 9, 1);

  RelativePrefixSum<int64_t> rps(cube, CellIndex{3, 3});
  const UpdateStats rps_stats = rps.Add(CellIndex{1, 1}, 1);

  PrefixSumMethod<int64_t> ps(cube);
  const UpdateStats ps_stats = ps.Add(CellIndex{1, 1}, 1);

  bench::Table table({"method", "RP/P cells", "overlay cells", "total"});
  table.AddRow({"relative_prefix_sum", bench::FmtInt(rps_stats.primary_cells),
                bench::FmtInt(rps_stats.aux_cells),
                bench::FmtInt(rps_stats.total())});
  table.AddRow({"prefix_sum", bench::FmtInt(ps_stats.primary_cells), "0",
                bench::FmtInt(ps_stats.total())});
  table.Print();
  std::printf("Paper: \"sixteen cells (twelve overlay cells and four cells\n"
              "in RP), compared to sixty four cells in the prefix sum\n"
              "method\".\n");
}

void PerCellSweep() {
  std::printf("\nTouched cells for every update position (9x9, k=3):\n");
  const Shape shape{9, 9};
  const OverlayGeometry geometry(shape, CellIndex{3, 3});
  bench::Table table({"row\\col", "0", "1", "2", "3", "4", "5", "6", "7",
                      "8"});
  for (int64_t i = 0; i < 9; ++i) {
    std::vector<std::string> row{bench::FmtInt(i)};
    for (int64_t j = 0; j < 9; ++j) {
      row.push_back(
          bench::FmtInt(RpsUpdateCells(geometry, CellIndex{i, j}).total()));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("(prefix sum method: cell (i,j) costs (9-i)*(9-j); worst 81.)\n");
}

}  // namespace
}  // namespace rps

int main() {
  rps::WorkedExample();
  rps::PerCellSweep();
  return 0;
}
