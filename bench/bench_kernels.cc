// Row-kernel microbenchmarks: every backend compiled into this binary
// and supported by the host CPU, for each kernel x value type x row
// length. Benchmarks are registered dynamically (the supported set is
// a runtime property), named
//   BM_Kernel/<backend>/<kernel>/<type>/<len>
// so runs on different hardware stay comparable per-backend. Bytes
// processed counts the row payload once per iteration, giving the
// familiar GB/s readout.

#include <benchmark/benchmark.h>

#include "bench/bench_metrics_main.h"

#include <cstdint>
#include <string>
#include <vector>

#include "cube/kernels/kernels.h"
#include "util/random.h"

namespace rps {
namespace {

constexpr int64_t kLengths[] = {64, 256, 1024, 16384};

template <typename T>
std::vector<T> RandomRow(int64_t len, uint64_t seed) {
  Rng rng(seed);
  std::vector<T> row(static_cast<size_t>(len));
  for (T& v : row) v = static_cast<T>(rng.UniformInt(-1000, 1000));
  return row;
}

template <typename T>
void RunKernelCase(benchmark::State& state, const kernels::KernelSet<T>& set,
                   const std::string& kernel, int64_t len) {
  std::vector<T> row = RandomRow<T>(len, 11);
  const std::vector<T> src = RandomRow<T>(len, 13);
  const int64_t k = 16;  // segment size for the segmented scan
  if (kernel == "add_to_row") {
    for (auto _ : state) {
      set.add_to_row(row.data(), len, T{3});
      benchmark::DoNotOptimize(row.data());
    }
  } else if (kernel == "add_row_into") {
    for (auto _ : state) {
      set.add_row_into(row.data(), src.data(), len);
      benchmark::DoNotOptimize(row.data());
    }
  } else if (kernel == "reduce_row") {
    T checksum{};
    for (auto _ : state) {
      checksum += set.reduce_row(row.data(), len);
    }
    benchmark::DoNotOptimize(checksum);
  } else if (kernel == "prefix_scan_row") {
    // Re-randomize nothing: repeated scans over the same buffer keep
    // growing the values, which is fine for throughput (int overflow
    // wraps; double loses precision but stays finite long enough).
    for (auto _ : state) {
      set.prefix_scan_row(row.data(), len);
      benchmark::DoNotOptimize(row.data());
    }
  } else {  // segmented_prefix_scan_row
    for (auto _ : state) {
      set.segmented_prefix_scan_row(row.data(), len, k);
      benchmark::DoNotOptimize(row.data());
    }
  }
  state.SetBytesProcessed(state.iterations() * len *
                          static_cast<int64_t>(sizeof(T)));
}

template <typename T>
void RegisterForType(kernels::Backend backend, const char* type_name) {
  const kernels::KernelSet<T>& set =
      kernels::SelectSet<T>(kernels::TablesFor(backend));
  static const char* const kKernels[] = {
      "add_to_row", "add_row_into", "reduce_row", "prefix_scan_row",
      "segmented_prefix_scan_row"};
  for (const char* kernel : kKernels) {
    for (const int64_t len : kLengths) {
      const std::string name = std::string("BM_Kernel/") +
                               kernels::BackendName(backend) + "/" + kernel +
                               "/" + type_name + "/" + std::to_string(len);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [&set, kernel = std::string(kernel), len](benchmark::State& state) {
            RunKernelCase<T>(state, set, kernel, len);
          });
    }
  }
}

void RegisterAll() {
  for (int b = 0; b < kernels::kNumBackends; ++b) {
    const kernels::Backend backend = static_cast<kernels::Backend>(b);
    if (!kernels::BackendSupported(backend)) continue;
    RegisterForType<int32_t>(backend, "int32");
    RegisterForType<int64_t>(backend, "int64");
    RegisterForType<double>(backend, "double");
  }
}

}  // namespace
}  // namespace rps

int main(int argc, char** argv) {
  // Resolve the dispatcher up front so the rps_kernel_backend info
  // gauge lands in the --metrics-json dump alongside the results.
  (void)rps::kernels::ActiveBackend();
  rps::RegisterAll();
  return rps::bench::RunBenchmarksWithMetrics(argc, argv);
}
