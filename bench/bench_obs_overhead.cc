// Observability overhead on the hot paths (google-benchmark).
//
// The always-on telemetry contract (docs/OBSERVABILITY.md) is that an
// instrumented binary with no sinks attached -- no event-log file, no
// slow-query threshold -- stays within a few percent of the same code
// with the RPS_OBS_OFF gate flipped. Each benchmark here runs with
// `Arg(1)` (gate on, the default) and `Arg(0)` (gate off, what
// RPS_OBS_OFF produces); compare the paired rows. A third tier where
// applicable shows the cost when a sink IS armed, so the fast path
// and the active path are both visible.
//
//   ./bench_obs_overhead --benchmark_filter=BM_EngineSum
//
// gates the acceptance check: (on - off) / off < 5%.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <unistd.h>
#include <vector>

#include "bench/bench_metrics_main.h"
#include "core/relative_prefix_sum.h"
#include "obs/event_log.h"
#include "obs/gate.h"
#include "olap/engine.h"
#include "olap/query.h"
#include "olap/schema.h"
#include "workload/data_gen.h"
#include "workload/query_gen.h"

namespace rps {
namespace {

// Gate scope: flips obs on/off for one benchmark run, restoring the
// default (on) afterwards so runs do not leak state into each other.
class GateScope {
 public:
  explicit GateScope(bool enabled) { obs::SetEnabled(enabled); }
  ~GateScope() { obs::SetEnabled(true); }
};

/// The RequestScope fast path in isolation: no sink, no threshold.
/// This is the fixed per-request cost every engine query pays.
void BM_RequestScopeIdle(benchmark::State& state) {
  const GateScope gate(state.range(0) != 0);
  for (auto _ : state) {
    obs::RequestScope request(obs::WideEventKind::kQuery, "bench.idle",
                              "relative_prefix_sum");
    benchmark::DoNotOptimize(&request);
  }
}
BENCHMARK(BM_RequestScopeIdle)->Arg(1)->Arg(0);

/// RequestScope with the event log armed (sink = a scratch file):
/// fills the WideEvent and pushes it through the MPSC ring.
void BM_RequestScopeEmitting(benchmark::State& state) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("rps_bench_obs_" + std::to_string(::getpid()) + ".jsonl"))
          .string();
  if (!obs::EventLog::Global().Open(path).ok()) {
    state.SkipWithError("cannot open event log sink");
    return;
  }
  for (auto _ : state) {
    obs::RequestScope request(obs::WideEventKind::kQuery, "bench.emit",
                              "relative_prefix_sum");
    request.set_box_volume(64);
    request.set_cells(2, 3);
  }
  obs::EventLog::Global().Close();
  std::filesystem::remove(path);
}
BENCHMARK(BM_RequestScopeEmitting);

/// The core structure's range-sum with its CollectorSpan: one
/// thread-local load when no collector is installed.
void BM_CoreRangeSum(benchmark::State& state) {
  const GateScope gate(state.range(0) != 0);
  const Shape shape = Shape::Hypercube(2, 256);
  RelativePrefixSum<int64_t> rps(UniformCube(shape, 0, 99, 37));
  UniformQueryGen gen(shape, /*seed=*/41);
  std::vector<Box> boxes;
  for (int i = 0; i < 256; ++i) boxes.push_back(gen.Next());
  size_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rps.RangeSum(boxes[next]));
    next = (next + 1) & 255;
  }
}
BENCHMARK(BM_CoreRangeSum)->Arg(1)->Arg(0)->Unit(benchmark::kMicrosecond);

OlapEngine MakeEngine() {
  Schema schema("MEASURE", {Dimension::Integer("x", 0, 64),
                            Dimension::Integer("y", 0, 64)});
  OlapEngine engine(std::move(schema), EngineMethod::kRelativePrefixSum);
  std::vector<OlapRecord> records;
  for (int64_t x = 0; x < 64; ++x) {
    for (int64_t y = 0; y < 64; y += 4) {
      OlapRecord record;
      record.values = {FieldValue(x), FieldValue(y)};
      record.measure = static_cast<double>(x + y);
      records.push_back(std::move(record));
    }
  }
  engine.Load(records);
  return engine;
}

/// The full engine query path: RequestScope + TraceSpan + histogram
/// observation around the core range sum. The headline overhead
/// number: instrumented (Arg 1) vs RPS_OBS_OFF (Arg 0).
void BM_EngineSum(benchmark::State& state) {
  const GateScope gate(state.range(0) != 0);
  OlapEngine engine = MakeEngine();
  RangeQuery query;
  query.WhereIntBetween("x", 8, 55);
  query.WhereIntBetween("y", 8, 55);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Sum(query));
  }
}
BENCHMARK(BM_EngineSum)->Arg(1)->Arg(0);

/// The engine update path (point insert into SUM and COUNT
/// structures) under the same comparison.
void BM_EngineInsert(benchmark::State& state) {
  const GateScope gate(state.range(0) != 0);
  OlapEngine engine = MakeEngine();
  std::vector<OlapRecord> records;
  for (int i = 0; i < 256; ++i) {
    OlapRecord record;
    record.values = {FieldValue(static_cast<int64_t>((i * 17) % 64)),
                     FieldValue(static_cast<int64_t>((i * 29) % 64))};
    record.measure = 1.0;
    records.push_back(std::move(record));
  }
  size_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Insert(records[next]));
    next = (next + 1) & 255;
  }
}
BENCHMARK(BM_EngineInsert)->Arg(1)->Arg(0)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace rps

int main(int argc, char** argv) {
  return rps::bench::RunBenchmarksWithMetrics(argc, argv);
}
