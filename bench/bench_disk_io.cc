// Experiment E8 -- Section 4.4: disk-resident RP with the overlay in
// main memory.
//
// Reports physical page reads/writes per operation for:
//   * box-aligned layout (each overlay box's RP region on its own
//     pages) vs linear row-major layout,
//   * overlay in RAM vs overlay on disk,
//   * varying overlay box sizes (the paper predicts the best k grows
//     once overlay accesses are free).
// Backing store is the deterministic MemPager (identical accounting
// to FilePager; see DESIGN.md Section 4) with a deliberately small
// buffer pool so page locality, not caching, dominates.

#include <cstdio>
#include <memory>

#include "bench/table.h"
#include "storage/paged_rps.h"
#include "workload/data_gen.h"
#include "workload/query_gen.h"

namespace rps {
namespace {

struct RunResult {
  double reads_per_query = 0;
  double reads_per_update = 0;
  double writes_per_update = 0;
};

RunResult RunConfig(const NdArray<int64_t>& cube, const CellIndex& box_size,
                    PageLayout layout, bool overlay_on_disk,
                    int64_t pool_frames) {
  PagedRps<int64_t>::Options options;
  options.box_size = box_size;
  options.rp_layout = layout;
  options.overlay_on_disk = overlay_on_disk;
  options.page_size = 4096;
  options.pool_frames = pool_frames;
  auto built = PagedRps<int64_t>::Build(
      cube, std::make_unique<MemPager>(options.page_size), options);
  RPS_CHECK_MSG(built.ok(), "paged build failed");
  auto& paged = *built.value();
  const Shape& shape = cube.shape();

  const int kQueries = 200;
  UniformQueryGen query_gen(shape, 31);
  paged.ResetCounters();
  for (int i = 0; i < kQueries; ++i) {
    auto sum = paged.RangeSum(query_gen.Next());
    RPS_CHECK(sum.ok());
  }
  RunResult result;
  result.reads_per_query =
      static_cast<double>(paged.page_io().page_reads) / kQueries;

  const int kUpdates = 200;
  UniformUpdateGen update_gen(shape, 5, 32);
  paged.ResetCounters();
  for (int i = 0; i < kUpdates; ++i) {
    const UpdateOp op = update_gen.Next();
    auto stats = paged.Add(op.cell, op.delta);
    RPS_CHECK(stats.ok());
  }
  RPS_CHECK(paged.Flush().ok());
  result.reads_per_update =
      static_cast<double>(paged.page_io().page_reads) / kUpdates;
  result.writes_per_update =
      static_cast<double>(paged.page_io().page_writes) / kUpdates;
  return result;
}

void LayoutComparison() {
  bench::PrintHeader("E8 / Section 4.4",
                     "page I/O per operation: layout and overlay placement");
  const Shape shape{512, 512};
  const NdArray<int64_t> cube = UniformCube(shape, 0, 99, 9);
  // 4096-byte pages of int64 = 512 cells; a 16x32 box = 512 cells =
  // exactly one page.
  std::printf("\ncube %s, page 4096B (512 cells), pool 8 frames\n",
              shape.ToString().c_str());
  bench::Table table({"config", "reads/query", "reads/update",
                      "writes/update"});
  struct Config {
    const char* name;
    CellIndex box;
    PageLayout layout;
    bool overlay_on_disk;
  };
  const Config configs[] = {
      {"box-aligned (16x32=1 page), overlay RAM", CellIndex{16, 32},
       PageLayout::kBoxClustered, false},
      {"box-clustered sqrt boxes (23x23), overlay RAM", CellIndex{23, 23},
       PageLayout::kBoxClustered, false},
      {"linear layout, overlay RAM", CellIndex{16, 32}, PageLayout::kLinear,
       false},
      {"box-aligned, overlay ON DISK", CellIndex{16, 32},
       PageLayout::kBoxClustered, true},
  };
  for (const Config& config : configs) {
    const RunResult r = RunConfig(cube, config.box, config.layout,
                                  config.overlay_on_disk, 8);
    table.AddRow({config.name, bench::Fmt("%.2f", r.reads_per_query),
                  bench::Fmt("%.2f", r.reads_per_update),
                  bench::Fmt("%.2f", r.writes_per_update)});
  }
  table.Print();
  std::printf(
      "Expected shape: box-aligned pages give the fewest pages per\n"
      "operation (each prefix lookup touches 1 RP page; a range query\n"
      "<= 4 in 2-d); keeping the overlay in RAM removes its page\n"
      "traffic entirely, as Section 4.4 argues.\n");
}

void BoxSizeSweepOnDisk() {
  std::printf("\nBox-size sweep with overlay in RAM (update page writes):\n");
  const Shape shape{512, 512};
  const NdArray<int64_t> cube = UniformCube(shape, 0, 99, 10);
  bench::Table table({"box size", "RP pages/box", "reads/update",
                      "writes/update", "reads/query"});
  for (int64_t k : {8, 16, 23, 32, 64, 128}) {
    const RunResult r = RunConfig(cube, CellIndex{k, k},
                                  PageLayout::kBoxClustered, false, 8);
    const int64_t cells = k * k;
    const int64_t pages_per_box = (cells + 511) / 512;
    table.AddRow({bench::FmtInt(k), bench::FmtInt(pages_per_box),
                  bench::Fmt("%.2f", r.reads_per_update),
                  bench::Fmt("%.2f", r.writes_per_update),
                  bench::Fmt("%.2f", r.reads_per_query)});
  }
  table.Print();
  std::printf(
      "Expected shape: with overlay accesses free (RAM), larger boxes\n"
      "than sqrt(n)=23 stay competitive on page I/O -- the paper's\n"
      "prediction that the optimal k grows in this configuration --\n"
      "until the box spans many pages and update write traffic climbs.\n");
}

}  // namespace
}  // namespace rps

int main() {
  rps::LayoutComparison();
  rps::BoxSizeSweepOnDisk();
  return 0;
}
