// Experiment E6b -- update-cost scaling in n for each method
// (google-benchmark). The paper's claim: naive O(1); prefix sum
// O(n^d); RPS O(n^(d/2)) with k = sqrt(n). Fenwick O(log^d n) for
// context.

#include <benchmark/benchmark.h>

#include "bench/bench_metrics_main.h"

#include "core/fenwick_method.h"
#include "core/hierarchical_rps.h"
#include "core/naive_method.h"
#include "core/prefix_sum_method.h"
#include "core/relative_prefix_sum.h"
#include "workload/data_gen.h"
#include "workload/query_gen.h"

namespace rps {
namespace {

template <typename Method>
void BM_Update(benchmark::State& state) {
  const int64_t n = state.range(0);
  const Shape shape = Shape::Hypercube(2, n);
  Method method(UniformCube(shape, 0, 99, 37));
  UniformUpdateGen gen(shape, 5, 41);
  std::vector<UpdateOp> ops;
  for (int i = 0; i < 256; ++i) ops.push_back(gen.Next());
  size_t next = 0;
  int64_t cells = 0;
  for (auto _ : state) {
    cells += method.Add(ops[next].cell, ops[next].delta).total();
    next = (next + 1) & 255;
  }
  state.counters["cells/update"] = benchmark::Counter(
      static_cast<double>(cells), benchmark::Counter::kAvgIterations);
}

BENCHMARK(BM_Update<NaiveMethod<int64_t>>)
    ->RangeMultiplier(4)
    ->Range(16, 1024);
BENCHMARK(BM_Update<PrefixSumMethod<int64_t>>)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Update<RelativePrefixSum<int64_t>>)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Update<FenwickMethod<int64_t>>)
    ->RangeMultiplier(4)
    ->Range(16, 1024);
BENCHMARK(BM_Update<HierarchicalRps<int64_t>>)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Unit(benchmark::kMicrosecond);

// The batched/parallel update path: AddBatch coalesces the strict-
// anchor writes shared by updates landing in the same box, and its
// scatters go through the row kernels (plus the thread pool above
// the size threshold). Reported per update for comparison with
// BM_Update<RelativePrefixSum>.
void BM_UpdateBatch(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t batch = 64;
  const Shape shape = Shape::Hypercube(2, n);
  RelativePrefixSum<int64_t> method(UniformCube(shape, 0, 99, 37));
  UniformUpdateGen gen(shape, 5, 41);
  std::vector<std::vector<RelativePrefixSum<int64_t>::CellDelta>> batches;
  for (int b = 0; b < 8; ++b) {
    std::vector<RelativePrefixSum<int64_t>::CellDelta> ops;
    for (int64_t i = 0; i < batch; ++i) {
      const UpdateOp op = gen.Next();
      ops.push_back({op.cell, op.delta});
    }
    batches.push_back(std::move(ops));
  }
  size_t next = 0;
  int64_t cells = 0;
  for (auto _ : state) {
    cells += method.AddBatch(batches[next]).total();
    next = (next + 1) & 7;
  }
  state.SetItemsProcessed(state.iterations() * batch);
  state.counters["cells/update"] = benchmark::Counter(
      static_cast<double>(cells) / static_cast<double>(batch),
      benchmark::Counter::kAvgIterations);
}

BENCHMARK(BM_UpdateBatch)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Unit(benchmark::kMicrosecond);

// Same batched path under a Zipf-skewed ("today's slice") update
// stream: updates cluster in few boxes, so the per-group coalescing
// of strict-anchor writes pays off directly.
void BM_UpdateBatchHotspot(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t batch = 64;
  const Shape shape = Shape::Hypercube(2, n);
  RelativePrefixSum<int64_t> method(UniformCube(shape, 0, 99, 37));
  HotspotUpdateGen gen(shape, /*skew=*/1.2, 5, 41);
  std::vector<std::vector<RelativePrefixSum<int64_t>::CellDelta>> batches;
  for (int b = 0; b < 8; ++b) {
    std::vector<RelativePrefixSum<int64_t>::CellDelta> ops;
    for (int64_t i = 0; i < batch; ++i) {
      const UpdateOp op = gen.Next();
      ops.push_back({op.cell, op.delta});
    }
    batches.push_back(std::move(ops));
  }
  size_t next = 0;
  int64_t cells = 0;
  for (auto _ : state) {
    cells += method.AddBatch(batches[next]).total();
    next = (next + 1) & 7;
  }
  state.SetItemsProcessed(state.iterations() * batch);
  state.counters["cells/update"] = benchmark::Counter(
      static_cast<double>(cells) / static_cast<double>(batch),
      benchmark::Counter::kAvgIterations);
}

BENCHMARK(BM_UpdateBatchHotspot)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Unit(benchmark::kMicrosecond);

// Build cost for context: all methods build in O(d N)-ish time except
// Fenwick's O(N log^d N) insertion build.
template <typename Method>
void BM_Build(benchmark::State& state) {
  const int64_t n = state.range(0);
  const Shape shape = Shape::Hypercube(2, n);
  const NdArray<int64_t> cube = UniformCube(shape, 0, 99, 43);
  for (auto _ : state) {
    Method method(cube);
    benchmark::DoNotOptimize(method);
  }
  state.SetItemsProcessed(state.iterations() * shape.num_cells());
}

BENCHMARK(BM_Build<PrefixSumMethod<int64_t>>)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Build<RelativePrefixSum<int64_t>>)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Build<FenwickMethod<int64_t>>)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rps

int main(int argc, char** argv) {
  return rps::bench::RunBenchmarksWithMetrics(argc, argv);
}
