// Durable-ingest microbenchmark: per-record vs group-commit WAL under
// concurrent writers (google-benchmark --benchmark_filter=bench_durable
// in the perf-smoke CI leg; the committed artifact with the headline
// writer sweep is BENCH_durable_scaling.json from `rps_tool
// durablebench`, which uses the stronger kSync barrier).
//
// Every Insert is durable before it returns in both modes; the modes
// differ only in how many barriers N concurrent writers pay. With
// Threads(t), group commit should hold throughput roughly flat per
// process while per-record throughput stays capped by one barrier per
// record under the log lock.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <memory>
#include <string>

#include "bench/bench_metrics_main.h"

#include "olap/durable_engine.h"
#include "util/check.h"
#include "util/random.h"

namespace rps {
namespace {

std::unique_ptr<DurableOlapEngine> g_engine;
std::string g_dir;

constexpr int64_t kSide = 64;

void SetupEngine(bool group_commit) {
  static int counter = 0;
  g_dir = (std::filesystem::temp_directory_path() /
           ("rps_bench_durable_" + std::to_string(++counter)))
              .string();
  std::filesystem::remove_all(g_dir);
  std::filesystem::create_directories(g_dir);
  Schema schema("MEASURE", {Dimension::Integer("d0", 0, kSide),
                            Dimension::Integer("d1", 0, kSide)});
  DurableOptions options;
  options.group_commit = group_commit;
  options.group.barrier = WalBarrier::kFlush;
  auto created = DurableOlapEngine::Create(std::move(schema),
                                           EngineMethod::kRelativePrefixSum,
                                           /*shards=*/0, g_dir, options);
  RPS_CHECK(created.ok());
  g_engine = std::move(created).value();
}

void SetupGroup(const benchmark::State&) { SetupEngine(true); }
void SetupPerRecord(const benchmark::State&) { SetupEngine(false); }

void TeardownEngine(const benchmark::State&) {
  g_engine.reset();
  std::filesystem::remove_all(g_dir);
}

void IngestLoop(benchmark::State& state) {
  Rng rng(1234 + static_cast<uint64_t>(state.thread_index()) *
                     0x9e3779b97f4a7c15ull);
  for (auto _ : state) {
    const OlapRecord record{{rng.UniformInt(0, kSide - 1),
                             rng.UniformInt(0, kSide - 1)},
                            static_cast<double>(rng.UniformInt(1, 8))};
    const Status status = g_engine->Insert(record);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_DurableIngestGroup(benchmark::State& state) { IngestLoop(state); }
void BM_DurableIngestPerRecord(benchmark::State& state) { IngestLoop(state); }

BENCHMARK(BM_DurableIngestGroup)
    ->Setup(SetupGroup)
    ->Teardown(TeardownEngine)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DurableIngestPerRecord)
    ->Setup(SetupPerRecord)
    ->Teardown(TeardownEngine)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace rps

int main(int argc, char** argv) {
  return rps::bench::RunBenchmarksWithMetrics(argc, argv);
}
