// Experiment E6a -- the constant-time query claim, as google-benchmark
// microbenchmarks.
//
// Range-query latency vs cube side n for each method (d = 2). The
// paper's claim: prefix sum and RPS queries are O(1) in n (flat
// lines, RPS within a small constant of PS: 2^d vs ~(2^d)^2 lookups
// per query); the naive method grows with the range volume; Fenwick
// grows as log^d n.
//
// Query pools are 65536 entries, pre-generated (generator cost stays
// out of the loop) but large enough that the branch predictor and
// cache cannot memorize the query stream -- a 256-entry cycle
// understated real query cost by letting the predictor lock onto the
// repeating corner pattern.

#include <benchmark/benchmark.h>

#include "bench/bench_metrics_main.h"

#include <algorithm>
#include <memory>
#include <random>
#include <span>
#include <vector>

#include "core/fenwick_method.h"
#include "core/hierarchical_rps.h"
#include "core/naive_method.h"
#include "core/prefix_sum_method.h"
#include "core/relative_prefix_sum.h"
#include "workload/data_gen.h"
#include "workload/query_gen.h"

namespace rps {
namespace {

constexpr size_t kQueryPool = 65536;  // power of two, see masking below

template <typename Method>
std::unique_ptr<Method> BuildMethod(int64_t n) {
  const Shape shape = Shape::Hypercube(2, n);
  return std::make_unique<Method>(UniformCube(shape, 0, 99, 13));
}

std::vector<Box> QueryPool(const Shape& shape, uint64_t seed) {
  UniformQueryGen gen(shape, seed);
  std::vector<Box> queries;
  queries.reserve(kQueryPool);
  for (size_t i = 0; i < kQueryPool; ++i) queries.push_back(gen.Next());
  return queries;
}

template <typename Method>
void BM_RangeQuery(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto method = BuildMethod<Method>(n);
  const std::vector<Box> queries = QueryPool(method->shape(), 17);
  size_t next = 0;
  int64_t checksum = 0;
  for (auto _ : state) {
    checksum += method->RangeSum(queries[next]);
    next = (next + 1) & (kQueryPool - 1);
  }
  benchmark::DoNotOptimize(checksum);
  state.SetLabel("d=2");
}

BENCHMARK(BM_RangeQuery<NaiveMethod<int64_t>>)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RangeQuery<PrefixSumMethod<int64_t>>)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Unit(benchmark::kNanosecond);
BENCHMARK(BM_RangeQuery<RelativePrefixSum<int64_t>>)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Unit(benchmark::kNanosecond);
BENCHMARK(BM_RangeQuery<FenwickMethod<int64_t>>)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Unit(benchmark::kNanosecond);
BENCHMARK(BM_RangeQuery<HierarchicalRps<int64_t>>)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Unit(benchmark::kNanosecond);

// Batched evaluation vs a single-query loop over the same 64 queries:
// the batch path sorts the corner jobs by anchor block and shares the
// per-block anchor reads and duplicated corner assemblies.
template <typename Method>
void BM_QueryBatch64(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto method = BuildMethod<Method>(n);
  const std::vector<Box> queries = QueryPool(method->shape(), 37);
  std::vector<int64_t> results(64);
  size_t next = 0;
  int64_t checksum = 0;
  for (auto _ : state) {
    method->RangeSumBatch(
        std::span<const Box>(queries).subspan(next, 64), results);
    for (const int64_t sum : results) checksum += sum;
    next = (next + 64) & (kQueryPool - 1);
  }
  benchmark::DoNotOptimize(checksum);
  state.SetItemsProcessed(state.iterations() * 64);
}

template <typename Method>
void BM_QueryLoop64(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto method = BuildMethod<Method>(n);
  const std::vector<Box> queries = QueryPool(method->shape(), 37);
  size_t next = 0;
  int64_t checksum = 0;
  for (auto _ : state) {
    for (size_t i = 0; i < 64; ++i) {
      checksum += method->RangeSum(queries[next + i]);
    }
    next = (next + 64) & (kQueryPool - 1);
  }
  benchmark::DoNotOptimize(checksum);
  state.SetItemsProcessed(state.iterations() * 64);
}

BENCHMARK(BM_QueryBatch64<RelativePrefixSum<int64_t>>)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_QueryLoop64<RelativePrefixSum<int64_t>>)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_QueryBatch64<HierarchicalRps<int64_t>>)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_QueryLoop64<HierarchicalRps<int64_t>>)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Unit(benchmark::kMicrosecond);

// Rollup-style batch: the 64 queries tile the cube 8x8 -- a GROUP BY
// over a coarse grid, the common OLAP dashboard shape. Adjacent tiles
// share prefix corners on the 9x9 lattice of tile boundaries, so the
// sorted batch assembles ~81 distinct corners where the loop runs 256
// independent assemblies. Queries are shuffled: arrival order does
// not matter to the batch path.
std::vector<Box> TiledQueries(int64_t n) {
  const int64_t tile = n / 8;
  std::vector<Box> queries;
  for (int64_t i = 0; i < 8; ++i) {
    for (int64_t j = 0; j < 8; ++j) {
      queries.push_back(Box(CellIndex{i * tile, j * tile},
                            CellIndex{(i + 1) * tile - 1, (j + 1) * tile - 1}));
    }
  }
  std::shuffle(queries.begin(), queries.end(), std::mt19937(7));
  return queries;
}

template <typename Method>
void BM_QueryBatchTiled64(benchmark::State& state) {
  auto method = BuildMethod<Method>(state.range(0));
  const std::vector<Box> queries = TiledQueries(state.range(0));
  std::vector<int64_t> results(queries.size());
  int64_t checksum = 0;
  for (auto _ : state) {
    method->RangeSumBatch(queries, results);
    for (const int64_t sum : results) checksum += sum;
  }
  benchmark::DoNotOptimize(checksum);
  state.SetItemsProcessed(state.iterations() * 64);
}

template <typename Method>
void BM_QueryLoopTiled64(benchmark::State& state) {
  auto method = BuildMethod<Method>(state.range(0));
  const std::vector<Box> queries = TiledQueries(state.range(0));
  int64_t checksum = 0;
  for (auto _ : state) {
    for (const Box& query : queries) checksum += method->RangeSum(query);
  }
  benchmark::DoNotOptimize(checksum);
  state.SetItemsProcessed(state.iterations() * 64);
}

BENCHMARK(BM_QueryBatchTiled64<RelativePrefixSum<int64_t>>)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_QueryLoopTiled64<RelativePrefixSum<int64_t>>)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_QueryBatchTiled64<HierarchicalRps<int64_t>>)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_QueryLoopTiled64<HierarchicalRps<int64_t>>)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Unit(benchmark::kMicrosecond);

// Prefix lookups in isolation (the 2^d+1-cell assembly of Figure 12).
void BM_RpsPrefixLookup(benchmark::State& state) {
  const int64_t n = state.range(0);
  const Shape shape = Shape::Hypercube(2, n);
  RelativePrefixSum<int64_t> rps(UniformCube(shape, 0, 99, 19));
  Rng rng(23);
  std::vector<CellIndex> cells;
  cells.reserve(kQueryPool);
  for (size_t i = 0; i < kQueryPool; ++i) {
    cells.push_back(
        CellIndex{rng.UniformInt(0, n - 1), rng.UniformInt(0, n - 1)});
  }
  size_t next = 0;
  int64_t checksum = 0;
  for (auto _ : state) {
    checksum += rps.PrefixSum(cells[next]);
    next = (next + 1) & (kQueryPool - 1);
  }
  benchmark::DoNotOptimize(checksum);
}
BENCHMARK(BM_RpsPrefixLookup)->RangeMultiplier(4)->Range(16, 4096);

// Dimensionality sweep at fixed N ~ 4096 cells: query cost grows with
// 4^d lookups but stays independent of n.
template <int kDims>
void BM_RpsQueryByDims(benchmark::State& state) {
  const int64_t n = kDims == 1 ? 4096 : (kDims == 2 ? 64 : (kDims == 3 ? 16 : 8));
  const Shape shape = Shape::Hypercube(kDims, n);
  RelativePrefixSum<int64_t> rps(UniformCube(shape, 0, 99, 29));
  const std::vector<Box> queries = QueryPool(shape, 31);
  size_t next = 0;
  int64_t checksum = 0;
  for (auto _ : state) {
    checksum += rps.RangeSum(queries[next]);
    next = (next + 1) & (kQueryPool - 1);
  }
  benchmark::DoNotOptimize(checksum);
}
BENCHMARK(BM_RpsQueryByDims<1>);
BENCHMARK(BM_RpsQueryByDims<2>);
BENCHMARK(BM_RpsQueryByDims<3>);
BENCHMARK(BM_RpsQueryByDims<4>);

}  // namespace
}  // namespace rps

int main(int argc, char** argv) {
  return rps::bench::RunBenchmarksWithMetrics(argc, argv);
}
