// Experiment E6a -- the constant-time query claim, as google-benchmark
// microbenchmarks.
//
// Range-query latency vs cube side n for each method (d = 2). The
// paper's claim: prefix sum and RPS queries are O(1) in n (flat
// lines, RPS within a small constant of PS: 2^d vs ~(2^d)^2 lookups
// per query); the naive method grows with the range volume; Fenwick
// grows as log^d n.

#include <benchmark/benchmark.h>

#include "bench/bench_metrics_main.h"

#include <memory>
#include <vector>

#include "core/fenwick_method.h"
#include "core/hierarchical_rps.h"
#include "core/naive_method.h"
#include "core/prefix_sum_method.h"
#include "core/relative_prefix_sum.h"
#include "workload/data_gen.h"
#include "workload/query_gen.h"

namespace rps {
namespace {

template <typename Method>
std::unique_ptr<Method> BuildMethod(int64_t n) {
  const Shape shape = Shape::Hypercube(2, n);
  return std::make_unique<Method>(UniformCube(shape, 0, 99, 13));
}

template <typename Method>
void BM_RangeQuery(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto method = BuildMethod<Method>(n);
  UniformQueryGen gen(method->shape(), 17);
  // Pre-generate queries so generator cost stays out of the loop.
  std::vector<Box> queries;
  for (int i = 0; i < 256; ++i) queries.push_back(gen.Next());
  size_t next = 0;
  int64_t checksum = 0;
  for (auto _ : state) {
    checksum += method->RangeSum(queries[next]);
    next = (next + 1) & 255;
  }
  benchmark::DoNotOptimize(checksum);
  state.SetLabel("d=2");
}

BENCHMARK(BM_RangeQuery<NaiveMethod<int64_t>>)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RangeQuery<PrefixSumMethod<int64_t>>)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Unit(benchmark::kNanosecond);
BENCHMARK(BM_RangeQuery<RelativePrefixSum<int64_t>>)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Unit(benchmark::kNanosecond);
BENCHMARK(BM_RangeQuery<FenwickMethod<int64_t>>)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Unit(benchmark::kNanosecond);
BENCHMARK(BM_RangeQuery<HierarchicalRps<int64_t>>)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Unit(benchmark::kNanosecond);

// Prefix lookups in isolation (the 2^d+1-cell assembly of Figure 12).
void BM_RpsPrefixLookup(benchmark::State& state) {
  const int64_t n = state.range(0);
  const Shape shape = Shape::Hypercube(2, n);
  RelativePrefixSum<int64_t> rps(UniformCube(shape, 0, 99, 19));
  Rng rng(23);
  std::vector<CellIndex> cells;
  for (int i = 0; i < 256; ++i) {
    cells.push_back(
        CellIndex{rng.UniformInt(0, n - 1), rng.UniformInt(0, n - 1)});
  }
  size_t next = 0;
  int64_t checksum = 0;
  for (auto _ : state) {
    checksum += rps.PrefixSum(cells[next]);
    next = (next + 1) & 255;
  }
  benchmark::DoNotOptimize(checksum);
}
BENCHMARK(BM_RpsPrefixLookup)->RangeMultiplier(4)->Range(16, 4096);

// Dimensionality sweep at fixed N ~ 4096 cells: query cost grows with
// 4^d lookups but stays independent of n.
template <int kDims>
void BM_RpsQueryByDims(benchmark::State& state) {
  const int64_t n = kDims == 1 ? 4096 : (kDims == 2 ? 64 : (kDims == 3 ? 16 : 8));
  const Shape shape = Shape::Hypercube(kDims, n);
  RelativePrefixSum<int64_t> rps(UniformCube(shape, 0, 99, 29));
  UniformQueryGen gen(shape, 31);
  std::vector<Box> queries;
  for (int i = 0; i < 256; ++i) queries.push_back(gen.Next());
  size_t next = 0;
  int64_t checksum = 0;
  for (auto _ : state) {
    checksum += rps.RangeSum(queries[next]);
    next = (next + 1) & 255;
  }
  benchmark::DoNotOptimize(checksum);
}
BENCHMARK(BM_RpsQueryByDims<1>);
BENCHMARK(BM_RpsQueryByDims<2>);
BENCHMARK(BM_RpsQueryByDims<3>);
BENCHMARK(BM_RpsQueryByDims<4>);

}  // namespace
}  // namespace rps

int main(int argc, char** argv) {
  return rps::bench::RunBenchmarksWithMetrics(argc, argv);
}
