// Shared main() for the google-benchmark binaries.
//
// Adds a `--metrics-json <path>` flag (stripped before benchmark's
// own flag parsing): after the run, the process-wide metric registry
// -- core-structure counters incremented inside the benchmark loops
// plus one `rps_bench_real_seconds{benchmark=...}` gauge per
// benchmark run -- is written to the path as JSON, next to the usual
// console table. scripts/run_experiments.sh collects these files as
// BENCH_*.json trajectories.

#ifndef RPS_BENCH_BENCH_METRICS_MAIN_H_
#define RPS_BENCH_BENCH_METRICS_MAIN_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace rps::bench {

// Console output as usual, while mirroring each run's per-iteration
// real time into the registry so it lands in the JSON dump.
class MetricsReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.iterations <= 0) continue;
      obs::MetricRegistry::Global()
          .GetGauge("rps_bench_real_seconds",
                    {{"benchmark", run.benchmark_name()}})
          .Set(run.real_accumulated_time /
               static_cast<double>(run.iterations));
    }
    ConsoleReporter::ReportRuns(reports);
  }
};

inline int RunBenchmarksWithMetrics(int argc, char** argv) {
  std::string metrics_path;
  std::vector<char*> passthrough;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--metrics-json" && i + 1 < argc) {
      metrics_path = argv[i + 1];
      ++i;
      continue;
    }
    passthrough.push_back(argv[i]);
  }
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc,
                                             passthrough.data())) {
    return 1;
  }
  MetricsReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!metrics_path.empty()) {
    const std::string json =
        obs::MetricRegistry::Global().RenderJson() + "\n";
    std::FILE* file = std::fopen(metrics_path.c_str(), "wb");
    if (file == nullptr ||
        std::fwrite(json.data(), 1, json.size(), file) != json.size() ||
        std::fclose(file) != 0) {
      std::fprintf(stderr, "error: cannot write metrics JSON to %s\n",
                   metrics_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote metrics JSON to %s\n", metrics_path.c_str());
  }
  return 0;
}

}  // namespace rps::bench

#endif  // RPS_BENCH_BENCH_METRICS_MAIN_H_
