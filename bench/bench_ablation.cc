// Experiment E9 -- ablations of this implementation's design choices
// (DESIGN.md Section 3):
//   A. Overlay build strategy: recursive projection-subtraction
//      (shipped) vs direct region sums from the prefix array.
//   B. Per-dimension sqrt box sizes vs one uniform k on rectangular
//      cubes.
//   C. Update enumeration soundness at scale: measured touched cells
//      vs closed-form cost model across box shapes.

#include <cstdio>

#include "bench/table.h"
#include "core/cost_model.h"
#include "core/relative_prefix_sum.h"
#include "util/stopwatch.h"
#include "workload/data_gen.h"
#include "workload/query_gen.h"

namespace rps {
namespace {

// Direct (oracle) overlay build: each stored value computed from the
// prefix array via its defining region sums -- O(4^d) per overlay
// cell instead of the shipped O(2^|S|) recursion.
template <typename T>
T DirectOverlayValue(const NdArray<T>& prefix, const OverlayGeometry& geo,
                     const CellIndex& box_index, const CellIndex& offsets) {
  const int d = geo.dims();
  const CellIndex anchor = geo.AnchorOf(box_index);
  CellIndex cell = anchor;
  for (int j = 0; j < d; ++j) cell[j] = anchor[j] + offsets[j];
  // val(c) = Sum(prod_{j in S}[a_j+1..c_j] x prod_{j notin S}[0..a_j])
  //        - Sum(prod_{j in S}[a_j+1..c_j] x prod_{j notin S}{a_j}).
  CellIndex lo1 = CellIndex::Filled(d, 0);
  CellIndex hi1 = CellIndex::Filled(d, 0);
  CellIndex lo2 = CellIndex::Filled(d, 0);
  CellIndex hi2 = CellIndex::Filled(d, 0);
  for (int j = 0; j < d; ++j) {
    if (offsets[j] > 0) {
      lo1[j] = anchor[j] + 1;
      hi1[j] = cell[j];
      lo2[j] = anchor[j] + 1;
      hi2[j] = cell[j];
    } else {
      lo1[j] = 0;
      hi1[j] = anchor[j];
      lo2[j] = anchor[j];
      hi2[j] = anchor[j];
    }
  }
  return SumFromPrefixArray(prefix, Box(lo1, hi1)) -
         SumFromPrefixArray(prefix, Box(lo2, hi2));
}

void AblationBuildStrategy() {
  bench::PrintHeader("E9a", "overlay build: recursive vs direct region sums");
  bench::Table table(
      {"cube", "box", "recursive build ms", "direct build ms", "agree"});
  struct Config {
    Shape shape;
    CellIndex box;
  };
  const Config configs[] = {
      {Shape{256, 256}, CellIndex{16, 16}},
      {Shape{64, 64, 64}, CellIndex{8, 8, 8}},
      {Shape{24, 24, 24, 24}, CellIndex{5, 5, 5, 5}},
  };
  for (const Config& config : configs) {
    const NdArray<int64_t> cube = UniformCube(config.shape, 0, 9, 3);

    Stopwatch recursive_watch;
    const RelativePrefixSum<int64_t> rps(cube, config.box);
    const double recursive_ms = recursive_watch.ElapsedSeconds() * 1e3;

    // Direct build of every overlay value.
    Stopwatch direct_watch;
    NdArray<int64_t> prefix = cube;
    PrefixSumInPlace(prefix);
    const OverlayGeometry& geo = rps.geometry();
    bool agree = true;
    CellIndex box_index = CellIndex::Filled(config.shape.dims(), 0);
    do {
      const CellIndex extents = geo.ExtentsOf(box_index);
      std::vector<int64_t> ext(static_cast<size_t>(config.shape.dims()));
      for (int j = 0; j < config.shape.dims(); ++j) {
        ext[static_cast<size_t>(j)] = extents[j];
      }
      const Shape box_shape = Shape::FromExtents(ext);
      CellIndex offsets = CellIndex::Filled(config.shape.dims(), 0);
      do {
        bool stored = false;
        for (int j = 0; j < config.shape.dims(); ++j) {
          if (offsets[j] == 0) {
            stored = true;
            break;
          }
        }
        if (!stored) continue;
        const int64_t direct =
            DirectOverlayValue(prefix, geo, box_index, offsets);
        if (direct != rps.overlay().at(box_index, offsets)) agree = false;
      } while (NextIndex(box_shape, offsets));
    } while (NextIndex(geo.grid_shape(), box_index));
    const double direct_ms = direct_watch.ElapsedSeconds() * 1e3;

    table.AddRow({config.shape.ToString(), config.box.ToString(),
                  bench::Fmt("%.1f", recursive_ms),
                  bench::Fmt("%.1f", direct_ms), agree ? "yes" : "NO"});
  }
  table.Print();
  std::printf("Expected: identical values; recursive build avoids the 4^d\n"
              "region sums per overlay cell and wins as d grows.\n");
}

void AblationBoxShape() {
  bench::PrintHeader(
      "E9b", "per-dimension sqrt(n_j) boxes vs uniform k on a 1024x64 cube");
  const Shape shape{1024, 64};
  const NdArray<int64_t> cube = UniformCube(shape, 0, 9, 5);
  bench::Table table({"box size", "worst-case cells", "measured avg cells"});
  const CellIndex candidates[] = {
      RecommendedBoxSize(shape),  // (32, 8)
      CellIndex{8, 8},
      CellIndex{16, 16},
      CellIndex{32, 32},
      CellIndex{64, 64},
  };
  for (const CellIndex& box : candidates) {
    const OverlayGeometry geometry(shape, box);
    RelativePrefixSum<int64_t> rps(cube, box);
    UniformUpdateGen updates(shape, 5, 77);
    int64_t touched = 0;
    const int kUpdates = 300;
    for (int i = 0; i < kUpdates; ++i) {
      const UpdateOp op = updates.Next();
      touched += rps.Add(op.cell, op.delta).total();
    }
    table.AddRow({box.ToString(),
                  bench::FmtInt(RpsWorstCaseUpdateCells(geometry).total()),
                  bench::Fmt("%.1f", static_cast<double>(touched) /
                                         static_cast<double>(kUpdates))});
  }
  table.Print();
  std::printf("Expected: the per-dimension sqrt choice (first row) is at or\n"
              "near the minimum; uniform k misfits rectangular cubes.\n");
}

void AblationCostModelAtScale() {
  bench::PrintHeader("E9c", "measured vs closed-form update cells at scale");
  bench::Table table({"cube", "box", "updates", "measured cells",
                      "predicted cells", "agree"});
  struct Config {
    Shape shape;
    CellIndex box;
  };
  const Config configs[] = {
      {Shape{300, 300}, CellIndex{17, 17}},
      {Shape{100, 100, 20}, CellIndex{10, 10, 4}},
      {Shape{1 << 14}, CellIndex{128}},
  };
  for (const Config& config : configs) {
    const NdArray<int64_t> cube = UniformCube(config.shape, 0, 9, 6);
    const OverlayGeometry geometry(config.shape, config.box);
    RelativePrefixSum<int64_t> rps(cube, config.box);
    UniformUpdateGen updates(config.shape, 5, 88);
    int64_t measured = 0;
    int64_t predicted = 0;
    const int kUpdates = 200;
    for (int i = 0; i < kUpdates; ++i) {
      const UpdateOp op = updates.Next();
      measured += rps.Add(op.cell, op.delta).total();
      predicted += RpsUpdateCells(geometry, op.cell).total();
    }
    table.AddRow({config.shape.ToString(), config.box.ToString(),
                  bench::FmtInt(kUpdates), bench::FmtInt(measured),
                  bench::FmtInt(predicted),
                  measured == predicted ? "yes" : "NO"});
  }
  table.Print();
}

}  // namespace
}  // namespace rps

int main() {
  rps::AblationBuildStrategy();
  rps::AblationBoxShape();
  rps::AblationCostModelAtScale();
  return 0;
}
