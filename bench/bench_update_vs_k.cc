// Experiment E4 -- Section 4.3: update cost as the overlay box size k
// varies, with the minimum at k ~ sqrt(n).
//
// For hypercubes of side n (d = 1, 2, 3) sweeps k and reports:
//   * the paper's approximation k^d + d n k^(d-2) + (n/k)^d,
//   * the exact worst-case touched cells from the cost model,
//   * measured touched cells averaged over a uniform update stream.
// The exact optimum and the sqrt(n) recommendation are printed for
// comparison.

#include <cstdio>
#include <vector>

#include "bench/table.h"
#include "core/cost_model.h"
#include "core/relative_prefix_sum.h"
#include "util/math.h"
#include "workload/data_gen.h"
#include "workload/query_gen.h"

namespace rps {
namespace {

void SweepForDimension(int d, int64_t n, const std::vector<int64_t>& ks) {
  std::printf("\n-- d=%d, n=%lld (N=%lld cells), sqrt(n)=%lld --\n", d,
              static_cast<long long>(n),
              static_cast<long long>(IntPow(n, d)),
              static_cast<long long>(ISqrt(n)));
  const Shape shape = Shape::Hypercube(d, n);
  const NdArray<int64_t> cube = UniformCube(shape, 0, 9, 42);

  bench::Table table({"k", "paper approx", "exact worst-case",
                      "measured avg (uniform updates)"});
  int64_t best_k = -1;
  int64_t best_cost = -1;
  for (int64_t k : ks) {
    if (k > n) continue;
    const CellIndex box_size = CellIndex::Filled(d, k);
    const OverlayGeometry geometry(shape, box_size);
    const int64_t worst = RpsWorstCaseUpdateCells(geometry).total();
    if (best_cost < 0 || worst < best_cost) {
      best_cost = worst;
      best_k = k;
    }

    RelativePrefixSum<int64_t> rps(cube, box_size);
    UniformUpdateGen updates(shape, 5, 7);
    const int kUpdates = 200;
    int64_t touched = 0;
    for (int i = 0; i < kUpdates; ++i) {
      const UpdateOp op = updates.Next();
      touched += rps.Add(op.cell, op.delta).total();
    }
    table.AddRow({bench::FmtInt(k),
                  bench::Fmt("%.0f", PaperRpsUpdateApprox(n, d, k)),
                  bench::FmtInt(worst),
                  bench::Fmt("%.1f", static_cast<double>(touched) /
                                         static_cast<double>(kUpdates))});
  }
  table.Print();
  std::printf("minimum of exact worst-case in sweep: k=%lld (paper: k=sqrt(n)=%lld)\n",
              static_cast<long long>(best_k),
              static_cast<long long>(ISqrt(n)));
}

}  // namespace
}  // namespace rps

int main() {
  rps::bench::PrintHeader(
      "E4 / Section 4.3",
      "update cost vs overlay box size; minimum near k = sqrt(n)");
  rps::SweepForDimension(1, 4096, {2, 4, 8, 16, 32, 64, 128, 256, 1024});
  rps::SweepForDimension(2, 256, {2, 4, 8, 16, 32, 64, 128, 256});
  rps::SweepForDimension(3, 64, {2, 4, 8, 16, 32, 64});
  return 0;
}
