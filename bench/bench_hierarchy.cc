// Extension benchmark: the two-level hierarchical structure
// (core/hierarchical_rps.h) against the flat relative prefix sum
// method -- worst-case and average update cells vs n, query latency,
// and the box-size sweep showing the optimum shifting from sqrt(n)
// (flat, n^(1/2) exponent) toward n^(2/5) (two levels, d=2).

#include <cstdio>
#include <vector>

#include "bench/table.h"
#include "core/hierarchical_rps.h"
#include "core/relative_prefix_sum.h"
#include "util/stopwatch.h"
#include "workload/data_gen.h"
#include "workload/query_gen.h"

namespace rps {
namespace {

template <typename Method>
int64_t WorstObservedUpdate(Method& method, const Shape& shape, int trials,
                            uint64_t seed) {
  // Sample cells near the origin (the expensive corner) and uniform
  // cells; report the worst touched-cell count observed.
  Rng rng(seed);
  int64_t worst = 0;
  for (int i = 0; i < trials; ++i) {
    CellIndex cell = CellIndex::Filled(shape.dims(), 0);
    for (int j = 0; j < shape.dims(); ++j) {
      cell[j] = (i % 2 == 0) ? rng.UniformInt(0, 2)
                             : rng.UniformInt(0, shape.extent(j) - 1);
    }
    worst = std::max(worst, method.Add(cell, 1).total());
  }
  return worst;
}

void ScalingTable() {
  bench::PrintHeader("extension / hierarchy",
                     "update cells vs n: flat RPS vs two-level (d=2)");
  bench::Table table({"n", "flat k", "flat worst-observed", "hier k",
                      "hier worst-observed", "flat avg query us",
                      "hier avg query us"});
  for (int64_t n : {64, 256, 1024, 2048}) {
    const Shape shape = Shape::Hypercube(2, n);
    const NdArray<int64_t> cube = UniformCube(shape, 0, 9, 60);
    RelativePrefixSum<int64_t> flat(cube);
    HierarchicalRps<int64_t> hier(cube);

    const int64_t flat_worst = WorstObservedUpdate(flat, shape, 60, 61);
    const int64_t hier_worst = WorstObservedUpdate(hier, shape, 60, 61);

    const int kQueries = 300;
    UniformQueryGen gen_flat(shape, 62);
    Stopwatch flat_watch;
    int64_t checksum = 0;
    for (int i = 0; i < kQueries; ++i) {
      checksum += flat.RangeSum(gen_flat.Next());
    }
    const double flat_us = flat_watch.ElapsedSeconds() * 1e6 / kQueries;
    UniformQueryGen gen_hier(shape, 62);
    Stopwatch hier_watch;
    for (int i = 0; i < kQueries; ++i) {
      checksum -= hier.RangeSum(gen_hier.Next());
    }
    const double hier_us = hier_watch.ElapsedSeconds() * 1e6 / kQueries;
    RPS_CHECK_MSG(checksum == 0, "methods diverged");

    table.AddRow({bench::FmtInt(n),
                  RecommendedBoxSize(shape).ToString(),
                  bench::FmtInt(flat_worst),
                  hier.box_size().ToString(),
                  bench::FmtInt(hier_worst),
                  bench::Fmt("%.2f", flat_us), bench::Fmt("%.2f", hier_us)});
  }
  table.Print();
  std::printf(
      "Expected shape: both queries stay O(1) (hierarchy pays a larger\n"
      "constant); flat worst-case updates grow ~sqrt(N)=n, the\n"
      "hierarchy's grow ~n^(4/5) with a visibly smaller value at large\n"
      "n.\n");
}

void ThreeDimensionalTable() {
  std::printf("\nThree-dimensional check (d=3, worst observed cells):\n");
  bench::Table table({"n", "flat (k=sqrt n)", "two-level (k=n^(3/7))"});
  for (int64_t n : {16, 32, 64, 128}) {
    const Shape shape = Shape::Hypercube(3, n);
    const NdArray<int64_t> cube = UniformCube(shape, 0, 9, 70);
    RelativePrefixSum<int64_t> flat(cube);
    HierarchicalRps<int64_t> hier(cube);
    table.AddRow({bench::FmtInt(n),
                  bench::FmtInt(WorstObservedUpdate(flat, shape, 40, 71)),
                  bench::FmtInt(WorstObservedUpdate(hier, shape, 40, 71))});
  }
  table.Print();
  std::printf(
      "At d=3 the hierarchy carries 2^d-1 = 7 inner structures, so its\n"
      "constant is larger and the crossover sits near n=128 (the\n"
      "asymptotic exponent drops from n^1.5 to ~n^1.29).\n");
}

void BoxSweep() {
  std::printf("\nBox-size sweep at n=1024 (d=2), worst observed cells:\n");
  const Shape shape = Shape::Hypercube(2, 1024);
  const NdArray<int64_t> cube = UniformCube(shape, 0, 9, 63);
  bench::Table table({"k", "flat RPS", "two-level"});
  for (int64_t k : {4, 8, 16, 32, 64, 128}) {
    RelativePrefixSum<int64_t> flat(cube, CellIndex{k, k});
    HierarchicalRps<int64_t> hier(cube, CellIndex{k, k});
    table.AddRow({bench::FmtInt(k),
                  bench::FmtInt(WorstObservedUpdate(flat, shape, 40, 64)),
                  bench::FmtInt(WorstObservedUpdate(hier, shape, 40, 64))});
  }
  table.Print();
  std::printf(
      "Expected: the flat optimum sits near k=32=sqrt(n); the two-level\n"
      "optimum sits lower (k~16=n^(2/5)) and beats the flat minimum.\n");
}

}  // namespace
}  // namespace rps

int main() {
  rps::ScalingTable();
  rps::ThreeDimensionalTable();
  rps::BoxSweep();
  return 0;
}
