// Extension benchmark: batched updates with coalesced interior-anchor
// writes (RelativePrefixSum::AddBatch) vs one Add per delta.
//
// The paper's Figure 14 shows that every update rewrites the anchors
// of all strictly dominating boxes; a nightly batch of m updates
// landing in few boxes repeats those (n/k)^d anchor writes m times.
// AddBatch writes them once per covering box with the summed delta.

#include <cstdio>
#include <vector>

#include "bench/table.h"
#include "core/relative_prefix_sum.h"
#include "util/stopwatch.h"
#include "workload/data_gen.h"
#include "workload/query_gen.h"

namespace rps {
namespace {

using CellDelta = RelativePrefixSum<int64_t>::CellDelta;

void RunScenario(const char* name, const Shape& shape,
                 const std::vector<CellDelta>& batch) {
  const NdArray<int64_t> cube = UniformCube(shape, 0, 9, 50);
  const CellIndex box = RecommendedBoxSize(shape);

  RelativePrefixSum<int64_t> sequential(cube, box);
  Stopwatch seq_watch;
  UpdateStats seq_stats;
  for (const CellDelta& op : batch) {
    seq_stats += sequential.Add(op.cell, op.delta);
  }
  const double seq_ms = seq_watch.ElapsedSeconds() * 1e3;

  RelativePrefixSum<int64_t> batched(cube, box);
  Stopwatch batch_watch;
  const UpdateStats batch_stats = batched.AddBatch(batch);
  const double batch_ms = batch_watch.ElapsedSeconds() * 1e3;

  RPS_CHECK_MSG(sequential.rp_array() == batched.rp_array(),
                "batch/sequential divergence");

  std::printf("%-34s  m=%5zu  cells %9lld -> %9lld (%.2fx)  time %7.2fms -> %7.2fms\n",
              name, batch.size(),
              static_cast<long long>(seq_stats.total()),
              static_cast<long long>(batch_stats.total()),
              static_cast<double>(seq_stats.total()) /
                  static_cast<double>(std::max<int64_t>(1, batch_stats.total())),
              seq_ms, batch_ms);
}

std::vector<CellDelta> HotBoxBatch(const Shape& shape, int count,
                                   uint64_t seed) {
  // All updates land in the first overlay box ("today's slice").
  Rng rng(seed);
  const CellIndex k = RecommendedBoxSize(shape);
  std::vector<CellDelta> batch;
  for (int i = 0; i < count; ++i) {
    CellIndex cell = CellIndex::Filled(shape.dims(), 0);
    for (int j = 0; j < shape.dims(); ++j) {
      cell[j] = rng.UniformInt(0, k[j] - 1);
    }
    batch.push_back({cell, rng.UniformInt(1, 5)});
  }
  return batch;
}

std::vector<CellDelta> ScatteredBatch(const Shape& shape, int count,
                                      uint64_t seed) {
  UniformUpdateGen gen(shape, 5, seed);
  std::vector<CellDelta> batch;
  for (int i = 0; i < count; ++i) {
    const UpdateOp op = gen.Next();
    batch.push_back({op.cell, op.delta});
  }
  return batch;
}

}  // namespace
}  // namespace rps

int main() {
  rps::bench::PrintHeader(
      "extension", "batched updates: coalesced anchors vs per-op Add");
  const rps::Shape square{512, 512};
  rps::RunScenario("512x512, 100 updates in one box", square,
                   rps::HotBoxBatch(square, 100, 1));
  rps::RunScenario("512x512, 1000 updates in one box", square,
                   rps::HotBoxBatch(square, 1000, 2));
  rps::RunScenario("512x512, 100 scattered updates", square,
                   rps::ScatteredBatch(square, 100, 3));
  const rps::Shape cube3{64, 64, 64};
  rps::RunScenario("64^3, 200 updates in one box", cube3,
                   rps::HotBoxBatch(cube3, 200, 4));
  rps::RunScenario("64^3, 200 scattered updates", cube3,
                   rps::ScatteredBatch(cube3, 200, 5));
  std::printf(
      "\nExpected shape: hot-box batches coalesce the (n/k)^d interior\n"
      "anchor writes (512x512, k=23: ~484 anchors) once per batch; the\n"
      "saving grows with batch size. Scattered batches save little.\n");
  return 0;
}
