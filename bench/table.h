// Minimal fixed-width table printer for the paper-artifact benchmark
// binaries (the google-benchmark microbenches handle their own
// output). Each experiment binary prints the rows/series the paper
// reports, plus context lines naming the experiment id from
// DESIGN.md.

#ifndef RPS_BENCH_TABLE_H_
#define RPS_BENCH_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

namespace rps::bench {

/// Prints a section header naming the DESIGN.md experiment.
inline void PrintHeader(const std::string& experiment,
                        const std::string& description) {
  std::printf("\n=== %s: %s ===\n", experiment.c_str(), description.c_str());
}

/// Fixed-width table: column titles then rows of preformatted cells.
class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> widths(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) {
      widths[c] = columns_[c].size();
    }
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t c = 0; c < row.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
      }
      std::printf("\n");
    };
    print_row(columns_);
    std::string rule;
    for (size_t c = 0; c < columns_.size(); ++c) {
      rule.append(widths[c], '-');
      rule.append("  ");
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting into std::string. The format
/// attribute moves -Wformat checking to each call site's literal.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 1, 0)))
#endif
inline std::string Fmt(const char* fmt, double value) {
  char buf[64];
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wformat-nonliteral"
#endif
  std::snprintf(buf, sizeof(buf), fmt, value);
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif
  return buf;
}

inline std::string FmtInt(int64_t value) { return std::to_string(value); }

}  // namespace rps::bench

#endif  // RPS_BENCH_TABLE_H_
