// Experiment E7 -- Figure 16: "Comparison of overlay and RP storage
// requirements as d and k are varied."
//
// For each dimensionality d and overlay box side k, prints the storage
// an overlay box needs (k^d - (k-1)^d cells) as a percentage of the RP
// region it covers (k^d cells), exactly the series plotted in the
// paper's Figure 16, plus the measured storage of real structures to
// confirm the formula.

#include <cstdio>

#include "bench/table.h"
#include "core/cost_model.h"
#include "core/relative_prefix_sum.h"
#include "workload/data_gen.h"

namespace rps {
namespace {

void PrintFormulaSeries() {
  bench::PrintHeader("E7 / Figure 16",
                     "overlay storage as % of covered RP region");
  bench::Table table({"k", "d=1", "d=2", "d=3", "d=4", "d=5"});
  for (int64_t k : {2, 4, 10, 20, 40, 60, 80, 100}) {
    std::vector<std::string> row{bench::FmtInt(k)};
    for (int d = 1; d <= 5; ++d) {
      row.push_back(bench::Fmt("%.3f%%", OverlayStoragePercent(k, d)));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "Paper's observation: as the overlay box size grows, overlay\n"
      "boxes use dramatically less storage than the RP region they\n"
      "cover (d=2, k=100 -> 199/10000 cells = 1.99%%).\n");
}

void PrintMeasuredStructures() {
  std::printf("\nMeasured structures (overlay cells counted, not derived):\n");
  bench::Table table({"cube", "box", "RP cells", "overlay cells",
                      "overlay/RP %"});
  struct Config {
    Shape shape;
    CellIndex box;
  };
  const Config configs[] = {
      {Shape{100, 100}, CellIndex{10, 10}},
      {Shape{100, 100}, CellIndex{20, 20}},
      {Shape{256, 256}, CellIndex{16, 16}},
      {Shape{32, 32, 32}, CellIndex{8, 8, 8}},
      {Shape{16, 16, 16, 16}, CellIndex{4, 4, 4, 4}},
  };
  for (const Config& config : configs) {
    const NdArray<int64_t> cube = UniformCube(config.shape, 0, 9, 7);
    const RelativePrefixSum<int64_t> rps(cube, config.box);
    const MemoryStats memory = rps.Memory();
    table.AddRow({config.shape.ToString(), config.box.ToString(),
                  bench::FmtInt(memory.primary_cells),
                  bench::FmtInt(memory.aux_cells),
                  bench::Fmt("%.3f%%", 100.0 *
                                           static_cast<double>(
                                               memory.aux_cells) /
                                           static_cast<double>(
                                               memory.primary_cells))});
  }
  table.Print();
}

}  // namespace
}  // namespace rps

int main() {
  rps::PrintFormulaSeries();
  rps::PrintMeasuredStructures();
  return 0;
}
