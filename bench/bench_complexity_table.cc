// Experiment E5 -- the paper's complexity comparison (Sections 2, 4.3
// and 5): naive vs prefix sum vs relative prefix sum (plus the
// Fenwick-tree extension), measured.
//
// For each method: average range-query latency, average update
// latency, average/worst touched cells per update, and the
// query*update cost product. Expected shape (Section 5):
//   naive:  O(n^d) query, O(1) update        -> product O(n^d)
//   PS:     O(1) query,   O(n^d) update      -> product O(n^d)
//   RPS:    O(1) query,   O(n^(d/2)) update  -> product O(n^(d/2))
// RPS's product should be orders of magnitude below both baselines,
// shrinking further as n grows.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/table.h"
#include "core/cost_model.h"
#include "core/fenwick_method.h"
#include "core/hierarchical_rps.h"
#include "core/naive_method.h"
#include "core/prefix_sum_method.h"
#include "core/relative_prefix_sum.h"
#include "workload/data_gen.h"
#include "workload/driver.h"

namespace rps {
namespace {

void RunForShape(int d, int64_t n, int64_t queries, int64_t updates) {
  const Shape shape = Shape::Hypercube(d, n);
  std::printf("\n-- d=%d, n=%lld (N=%lld cells), %lld queries + %lld updates --\n",
              d, static_cast<long long>(n),
              static_cast<long long>(shape.num_cells()),
              static_cast<long long>(queries),
              static_cast<long long>(updates));
  const NdArray<int64_t> cube = UniformCube(shape, 0, 99, 11);

  std::vector<std::unique_ptr<QueryMethod<int64_t>>> methods;
  methods.push_back(std::make_unique<NaiveMethod<int64_t>>(cube));
  methods.push_back(std::make_unique<PrefixSumMethod<int64_t>>(cube));
  methods.push_back(std::make_unique<RelativePrefixSum<int64_t>>(cube));
  methods.push_back(std::make_unique<HierarchicalRps<int64_t>>(cube));
  methods.push_back(std::make_unique<FenwickMethod<int64_t>>(cube));

  bench::Table table({"method", "avg query us", "avg update us",
                      "avg cells/update", "query*update (us^2)"});
  int64_t reference_checksum = 0;
  for (size_t m = 0; m < methods.size(); ++m) {
    UniformQueryGen query_gen(shape, 101);
    UniformUpdateGen update_gen(shape, 9, 202);
    const WorkloadSpec spec{.num_queries = queries, .num_updates = updates,
                            .interleave = true};
    const WorkloadReport report =
        RunWorkload(*methods[m], query_gen, update_gen, spec);
    if (m == 0) {
      reference_checksum = report.query_checksum;
    } else if (report.query_checksum != reference_checksum) {
      std::printf("!! %s diverged from the naive oracle\n",
                  report.method.c_str());
    }
    table.AddRow({report.method, bench::Fmt("%.3f", report.avg_query_micros()),
                  bench::Fmt("%.3f", report.avg_update_micros()),
                  bench::Fmt("%.1f", report.avg_update_cells()),
                  bench::Fmt("%.3f", report.avg_query_micros() *
                                         report.avg_update_micros())});
  }
  table.Print();
}

}  // namespace
}  // namespace rps

int main() {
  rps::bench::PrintHeader(
      "E5 / Sections 2+5",
      "measured complexity table: naive vs prefix sum vs RPS vs Fenwick");
  rps::RunForShape(2, 64, 400, 400);
  rps::RunForShape(2, 256, 300, 300);
  rps::RunForShape(2, 1024, 100, 100);
  rps::RunForShape(3, 32, 200, 200);
  rps::RunForShape(3, 64, 60, 60);
  rps::RunForShape(1, 65536, 200, 200);
  std::printf(
      "\nExpected shape: naive loses on queries, prefix sum loses on\n"
      "updates, RPS holds both low; the query*update product for RPS\n"
      "drops further below the baselines as n grows (O(n^(d/2)) vs\n"
      "O(n^d)).\n");
  return 0;
}
