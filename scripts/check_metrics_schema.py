#!/usr/bin/env python3
"""Validates the metrics JSON exposition written by `rps_tool metrics`
(and `--metrics-json` elsewhere) against its documented shape; see
docs/TOOLING.md. Exits nonzero with a message on the first violation,
including structurally valid but empty output.

Usage: check_metrics_schema.py [--structure-only] <metrics.json>
       check_metrics_schema.py [--structure-only] --url <http://host:port/metrics.json>

By default the required-metrics lists below are enforced -- they match
what `rps_tool metrics` must produce. Pass --structure-only for JSON
from other producers (e.g. `--metrics-json` on a filtered benchmark
run, or a live scrape of a serving process whose workload does not
touch every subsystem), which is schema-checked without the coverage
requirement. --url scrapes the exposition server's /metrics.json
endpoint (docs/OBSERVABILITY.md) instead of reading a file;
scripts/check_expo.sh uses this against a live `rps_tool serve`.
"""

import json
import sys
import urllib.error
import urllib.request

# Metrics the built-in `rps_tool metrics` workload must produce; their
# absence means an instrumentation path broke.
REQUIRED_COUNTERS = [
    "rps_bufferpool_hits",
    "rps_bufferpool_misses",
    "rps_core_rps_queries_total",
    "rps_core_rps_updates_total",
    "rps_pager_page_reads_total",
    "rps_wal_appends_total",
]
REQUIRED_HISTOGRAMS = [
    "rps_wal_fsync_seconds",
    "rps_wal_group_records",
    "rps_wal_group_bytes",
    "rps_workload_query_seconds",
    "rps_workload_update_seconds",
]


def fail(message):
    print(f"check_metrics_schema: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_common(entry, section):
    if not isinstance(entry, dict):
        fail(f"{section} entry is not an object: {entry!r}")
    name = entry.get("name")
    if not isinstance(name, str) or not name.startswith("rps_"):
        fail(f"{section} entry has bad name: {name!r}")
    labels = entry.get("labels")
    if not isinstance(labels, dict) or not all(
        isinstance(k, str) and isinstance(v, str) for k, v in labels.items()
    ):
        fail(f"{name}: labels must be a string-to-string object")
    return name


def load_document(args):
    """Returns the parsed JSON document from a file path or --url."""
    if args and args[0] == "--url":
        if len(args) != 2:
            fail("usage: check_metrics_schema.py --url <http://.../metrics.json>")
        url = args[1]
        if not url.startswith("http://"):
            fail(f"--url expects an http:// URL, got {url!r}")
        try:
            with urllib.request.urlopen(url, timeout=10) as response:
                if response.status != 200:
                    fail(f"{url}: HTTP {response.status}")
                body = response.read().decode("utf-8")
        except (urllib.error.URLError, OSError) as error:
            fail(f"cannot scrape {url}: {error}")
        try:
            return json.loads(body)
        except json.JSONDecodeError as error:
            fail(f"{url}: response is not JSON: {error}")
    if len(args) != 1:
        fail(
            "usage: check_metrics_schema.py [--structure-only]"
            " (<metrics.json> | --url <http://...>)"
        )
    try:
        with open(args[0], encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"cannot parse {args[0]}: {error}")


def main():
    args = sys.argv[1:]
    structure_only = "--structure-only" in args
    args = [a for a in args if a != "--structure-only"]
    doc = load_document(args)

    if not isinstance(doc, dict) or set(doc) != {
        "counters",
        "gauges",
        "histograms",
    }:
        fail("top level must be {counters, gauges, histograms}")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(doc[section], list):
            fail(f"'{section}' must be a list")
    if not doc["counters"] and not doc["gauges"] and not doc["histograms"]:
        fail("registry is empty: no metrics were recorded")

    counter_names = set()
    for entry in doc["counters"]:
        name = check_common(entry, "counter")
        counter_names.add(name)
        if not isinstance(entry.get("value"), int) or entry["value"] < 0:
            fail(f"{name}: counter value must be a non-negative integer")

    for entry in doc["gauges"]:
        name = check_common(entry, "gauge")
        if not isinstance(entry.get("value"), (int, float)):
            fail(f"{name}: gauge value must be a number")

    histogram_names = set()
    for entry in doc["histograms"]:
        name = check_common(entry, "histogram")
        histogram_names.add(name)
        count = entry.get("count")
        if not isinstance(count, int) or count < 0:
            fail(f"{name}: count must be a non-negative integer")
        for field in ("sum_seconds", "p50", "p95", "p99"):
            if not isinstance(entry.get(field), (int, float)):
                fail(f"{name}: {field} must be a number")
        buckets = entry.get("buckets")
        overflow = entry.get("overflow")
        if not isinstance(buckets, list):
            fail(f"{name}: buckets must be a list")
        if not isinstance(overflow, int) or overflow < 0:
            fail(f"{name}: overflow must be a non-negative integer")
        in_buckets = 0
        last_bound = 0.0
        for bucket in buckets:
            if not isinstance(bucket, dict):
                fail(f"{name}: bucket is not an object")
            bound = bucket.get("le_seconds")
            bucket_count = bucket.get("count")
            if not isinstance(bound, (int, float)) or bound <= last_bound:
                fail(f"{name}: bucket bounds must increase ({bound!r})")
            if not isinstance(bucket_count, int) or bucket_count < 1:
                fail(f"{name}: emitted buckets must hold >= 1 observation")
            last_bound = bound
            in_buckets += bucket_count
        if in_buckets + overflow != count:
            fail(
                f"{name}: bucket counts {in_buckets} + overflow {overflow}"
                f" != count {count}"
            )

    if not structure_only:
        for name in REQUIRED_COUNTERS:
            if name not in counter_names:
                fail(f"required counter missing: {name}")
        for name in REQUIRED_HISTOGRAMS:
            if name not in histogram_names:
                fail(f"required histogram missing: {name}")

    print(
        "check_metrics_schema: OK "
        f"({len(doc['counters'])} counters, {len(doc['gauges'])} gauges, "
        f"{len(doc['histograms'])} histograms)"
    )


if __name__ == "__main__":
    main()
