#!/usr/bin/env python3
"""Guard-discipline lint for the capability-annotated locking layer.

Two rules, both cheap textual checks that close the gaps Clang's
-Wthread-safety cannot see from inside one translation unit:

1. Raw-primitive ban. `std::mutex`, `std::shared_mutex`,
   `std::condition_variable*`, `std::lock_guard`, `std::unique_lock`,
   `std::shared_lock`, `std::scoped_lock`, plus the bare-metal fence
   and flag primitives (`std::atomic_thread_fence`,
   `std::atomic_signal_fence`, `std::atomic_flag`) may appear only in
   the designated sync-owner files: src/util/mutex.h (lock wrappers)
   and src/util/epoch.h + src/util/epoch.cc (the epoch-reclamation
   primitive, whose correctness argument owns its fences). Everything
   else must use the annotated Mutex/SharedMutex/MutexLock/ReaderLock/
   WriterLock/CondVar wrappers or EpochDomain, because a raw primitive
   is invisible to the analysis -- data it guards silently loses its
   proof. (Plain `std::atomic<T>` stays allowed everywhere: metrics
   and counters rely on it, and it cannot express a critical section.)

2. Guarded-sibling rule. A class/struct that declares a `Mutex` or
   `SharedMutex` member must annotate at least one other member with
   GUARDED_BY/PT_GUARDED_BY in the same file. A lock with no guarded
   data is either dead weight or (worse) guarding data the analysis
   does not know about. Opt out a genuinely standalone lock with a
   trailing `// check_guards: standalone` comment on its declaration.

Usage: scripts/check_guards.py [file ...]
With no arguments, scans src/ tools/ bench/ examples/ (tests/ is
exempt from rule 2 -- fixtures declare odd shapes on purpose -- but
still subject to rule 1). Exits 1 on any finding.
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
# Files allowed to name raw synchronization primitives: the lock
# wrappers, and the epoch-reclamation primitive (raw seq_cst fences
# are part of its pin/advance protocol).
SYNC_OWNERS = {
    REPO / "src" / "util" / "mutex.h",
    REPO / "src" / "util" / "epoch.h",
    REPO / "src" / "util" / "epoch.cc",
}
DEFAULT_DIRS = ["src", "tools", "bench", "examples", "tests"]

RAW_PRIMITIVE = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(_any)?|lock_guard|unique_lock|shared_lock|"
    r"scoped_lock|atomic_thread_fence|atomic_signal_fence|atomic_flag)\b"
)

# A Mutex/SharedMutex *member*: starts a declaration (optionally
# mutable) and ends with a member-ish terminator (name, brace-init,
# or ';'), so locals in functions are mostly excluded by the
# declaration-context scan below.
MUTEX_MEMBER = re.compile(
    r"^\s*(mutable\s+)?(rps::)?(Mutex|SharedMutex)\s+\w+\s*(\{[^}]*\})?\s*;"
)
GUARDED = re.compile(r"\b(PT_)?GUARDED_BY\s*\(")
STANDALONE_OPT_OUT = re.compile(r"//\s*check_guards:\s*standalone")


def strip_comments_and_strings(line: str) -> str:
    """Removes // comments and string literal bodies (keeps quotes)."""
    line = re.sub(r'"(\\.|[^"\\])*"', '""', line)
    return re.sub(r"//.*$", "", line)


def check_file(path: pathlib.Path, findings: list[str]) -> None:
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as err:
        findings.append(f"{path}: unreadable: {err}")
        return

    rel = path.resolve()
    is_wrapper = rel in SYNC_OWNERS
    in_tests = "tests" in rel.parts

    lines = text.splitlines()
    in_block_comment = False
    mutex_decls: list[tuple[int, str]] = []  # (lineno, line)
    has_guarded = bool(GUARDED.search(text))

    for lineno, raw in enumerate(lines, start=1):
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block_comment = False
        # Drop /* ... */ spans (single-line and opening).
        line = re.sub(r"/\*.*?\*/", "", line)
        start = line.find("/*")
        if start >= 0:
            line = line[:start]
            in_block_comment = True
        code = strip_comments_and_strings(line)

        if not is_wrapper and RAW_PRIMITIVE.search(code):
            findings.append(
                f"{path}:{lineno}: raw synchronization primitive "
                f"'{RAW_PRIMITIVE.search(code).group(0)}' -- use the "
                f"annotated wrappers from src/util/mutex.h (or "
                f"EpochDomain from src/util/epoch.h)"
            )
        if (
            not in_tests
            and MUTEX_MEMBER.match(code)
            and not STANDALONE_OPT_OUT.search(raw)
        ):
            mutex_decls.append((lineno, raw.strip()))

    if mutex_decls and not has_guarded:
        for lineno, decl in mutex_decls:
            findings.append(
                f"{path}:{lineno}: mutex member '{decl}' but no "
                f"GUARDED_BY-annotated sibling anywhere in the file -- "
                f"annotate the data it guards (or mark the declaration "
                f"'// check_guards: standalone')"
            )


def main(argv: list[str]) -> int:
    if len(argv) > 1:
        files = [pathlib.Path(a) for a in argv[1:]]
    else:
        files = []
        for d in DEFAULT_DIRS:
            root = REPO / d
            if root.is_dir():
                files.extend(sorted(root.rglob("*.h")))
                files.extend(sorted(root.rglob("*.cc")))

    findings: list[str] = []
    checked = 0
    for f in files:
        if f.suffix not in (".h", ".cc", ".cpp", ".hpp"):
            continue
        if not f.exists():
            continue
        checked += 1
        check_file(f, findings)

    for finding in findings:
        print(finding)
    if findings:
        print(
            f"check_guards.py: {len(findings)} finding(s) in "
            f"{checked} file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"check_guards.py: OK ({checked} files)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
