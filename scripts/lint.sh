#!/usr/bin/env bash
# Static-analysis runner for the RPS engine.
#
# Preferred backend: clang-tidy with the repo .clang-tidy policy, run
# over every translation unit under the target directory using the
# compile database of the `release` preset (configured on demand).
#
# Fallback backend (toolchains without clang-tidy, e.g. gcc-only
# containers): a strict-warning pass with g++. Every .cc is compiled
# with -fsyntax-only -Werror under a wider warning set than the normal
# build, and every header is additionally compiled standalone, which
# both syntax-checks it and proves it self-contained.
#
# Usage: scripts/lint.sh [dir ...]   (default: src tools bench)
# Exits nonzero on the first diagnostic.

set -u -o pipefail

cd "$(dirname "$0")/.."

targets=("$@")
if [ "${#targets[@]}" -eq 0 ]; then
  targets=(src tools bench)
fi

sources=()
headers=()
for dir in "${targets[@]}"; do
  while IFS= read -r f; do sources+=("$f"); done \
    < <(find "$dir" -name '*.cc' | sort)
  while IFS= read -r f; do headers+=("$f"); done \
    < <(find "$dir" -name '*.h' | sort)
done

if [ "${#sources[@]}" -eq 0 ] && [ "${#headers[@]}" -eq 0 ]; then
  echo "lint.sh: no C++ files under: ${targets[*]}" >&2
  exit 2
fi

if command -v clang-tidy >/dev/null 2>&1; then
  build_dir=build/release
  if [ ! -f "$build_dir/compile_commands.json" ]; then
    echo "lint.sh: configuring '$build_dir' for the compile database" >&2
    cmake --preset release >/dev/null
  fi
  echo "lint.sh: clang-tidy over ${#sources[@]} translation units" >&2
  status=0
  for f in "${sources[@]}"; do
    clang-tidy -p "$build_dir" --quiet "$f" || status=1
  done
  exit "$status"
fi

echo "lint.sh: clang-tidy not found; using GCC strict-warning fallback" >&2
GCC_FLAGS=(
  -std=c++20 -Isrc -I. -fsyntax-only -Werror
  -Wall -Wextra -Wpedantic
  -Wshadow -Wnon-virtual-dtor -Woverloaded-virtual -Wvla
  -Wwrite-strings -Wpointer-arith -Wformat=2 -Wundef
  -Wconversion -Wold-style-cast -Wdouble-promotion
)

status=0
for f in "${sources[@]}"; do
  if ! g++ "${GCC_FLAGS[@]}" "$f"; then
    echo "lint.sh: FAILED $f" >&2
    status=1
  fi
done
for f in "${headers[@]}"; do
  if ! g++ "${GCC_FLAGS[@]}" -x c++ "$f"; then
    echo "lint.sh: FAILED (standalone header) $f" >&2
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "lint.sh: OK (${#sources[@]} sources, ${#headers[@]} headers)" >&2
fi
exit "$status"
