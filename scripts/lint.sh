#!/usr/bin/env bash
# Static-analysis runner for the RPS engine.
#
# Preferred backend: clang-tidy with the repo .clang-tidy policy,
# using the compile database of the `release` preset (configured on
# demand). By default only files that changed relative to origin/main
# (merge-base, plus uncommitted changes) are linted, so iterating on a
# branch stays fast; `--all` restores the full-tree sweep.
#
# Fallback backend (toolchains without clang-tidy, e.g. gcc-only
# containers): a strict-warning pass with g++. Every .cc is compiled
# with -fsyntax-only -Werror under a wider warning set than the normal
# build, and every header is additionally compiled standalone, which
# both syntax-checks it and proves it self-contained.
#
# The guard-discipline lint (scripts/check_guards.py) always runs over
# the whole tree first -- it is milliseconds-cheap and its rules are
# global, not per-file.
#
# Usage: scripts/lint.sh [--all] [dir ...]   (default dirs: src tools bench)
# Exits nonzero on the first diagnostic.

set -u -o pipefail

cd "$(dirname "$0")/.."

all=0
targets=()
for arg in "$@"; do
  case "$arg" in
    --all) all=1 ;;
    *) targets+=("$arg") ;;
  esac
done
if [ "${#targets[@]}" -eq 0 ]; then
  targets=(src tools bench)
fi

if ! python3 scripts/check_guards.py; then
  echo "lint.sh: guard-discipline lint failed" >&2
  exit 1
fi

sources=()
headers=()
for dir in "${targets[@]}"; do
  while IFS= read -r f; do sources+=("$f"); done \
    < <(find "$dir" -name '*.cc' | sort)
  while IFS= read -r f; do headers+=("$f"); done \
    < <(find "$dir" -name '*.h' | sort)
done

if [ "${#sources[@]}" -eq 0 ] && [ "${#headers[@]}" -eq 0 ]; then
  echo "lint.sh: no C++ files under: ${targets[*]}" >&2
  exit 2
fi

# Restrict to files changed vs origin/main (merge-base) plus any
# uncommitted changes, unless --all or no usable base ref.
if [ "$all" -eq 0 ]; then
  base=""
  if git rev-parse --verify -q origin/main >/dev/null 2>&1; then
    base=$(git merge-base HEAD origin/main 2>/dev/null || true)
  fi
  if [ -n "$base" ]; then
    changed=$( { git diff --name-only "$base" HEAD; git diff --name-only; \
                 git diff --name-only --cached; } | sort -u)
    filter() {
      local out=()
      for f in "$@"; do
        if grep -qxF "$f" <<<"$changed"; then out+=("$f"); fi
      done
      printf '%s\n' "${out[@]:-}"
    }
    mapfile -t sources < <(filter "${sources[@]:-}" | sed '/^$/d')
    mapfile -t headers < <(filter "${headers[@]:-}" | sed '/^$/d')
    echo "lint.sh: diff-aware mode (vs $(git rev-parse --short "$base")):" \
         "${#sources[@]} sources, ${#headers[@]} headers (--all for full tree)" >&2
    if [ "${#sources[@]}" -eq 0 ] && [ "${#headers[@]}" -eq 0 ]; then
      echo "lint.sh: no changed C++ files; done" >&2
      exit 0
    fi
  else
    echo "lint.sh: no origin/main base found; linting the full tree" >&2
  fi
fi

if command -v clang-tidy >/dev/null 2>&1; then
  build_dir=build/release
  if [ ! -f "$build_dir/compile_commands.json" ]; then
    echo "lint.sh: configuring '$build_dir' for the compile database" >&2
    cmake --preset release >/dev/null
  fi
  echo "lint.sh: clang-tidy over ${#sources[@]} translation units" >&2
  status=0
  for f in "${sources[@]:-}"; do
    [ -n "$f" ] || continue
    clang-tidy -p "$build_dir" --quiet "$f" || status=1
  done
  exit "$status"
fi

echo "lint.sh: clang-tidy not found; using GCC strict-warning fallback" >&2
GCC_FLAGS=(
  -std=c++20 -Isrc -I. -fsyntax-only -Werror
  -Wall -Wextra -Wpedantic
  -Wshadow -Wnon-virtual-dtor -Woverloaded-virtual -Wvla
  -Wwrite-strings -Wpointer-arith -Wformat=2 -Wundef
  -Wconversion -Wold-style-cast -Wdouble-promotion
)

status=0
for f in "${sources[@]:-}"; do
  [ -n "$f" ] || continue
  if ! g++ "${GCC_FLAGS[@]}" "$f"; then
    echo "lint.sh: FAILED $f" >&2
    status=1
  fi
done
for f in "${headers[@]:-}"; do
  [ -n "$f" ] || continue
  if ! g++ "${GCC_FLAGS[@]}" -x c++ "$f"; then
    echo "lint.sh: FAILED (standalone header) $f" >&2
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "lint.sh: OK (${#sources[@]} sources, ${#headers[@]} headers)" >&2
fi
exit "$status"
