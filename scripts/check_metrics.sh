#!/usr/bin/env bash
# CI smoke check for the observability layer: runs `rps_tool metrics`
# on its small built-in workload and validates the JSON exposition
# with scripts/check_metrics_schema.py. Fails on malformed, empty, or
# schema-violating output.
#
# Usage: scripts/check_metrics.sh [build-dir]   (default: build/release)
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir=${1:-build/release}
tool="$build_dir/tools/rps_tool"
if [ ! -x "$tool" ]; then
  echo "check_metrics.sh: $tool not built" >&2
  exit 2
fi

out=$(mktemp)
trap 'rm -f "$out"' EXIT

"$tool" metrics --shape 16x16 --queries 32 --updates 32 \
  --format json --json "$out" > /dev/null

python3 scripts/check_metrics_schema.py "$out"
