#!/usr/bin/env bash
# CI smoke check for the exposition server (docs/OBSERVABILITY.md):
# starts `rps_tool serve` on an ephemeral port with the slow-query log
# armed and an event-log sink attached, scrapes every endpoint while
# the serve workload runs, and validates the live /metrics.json scrape
# with scripts/check_metrics_schema.py --url. Fails if any endpoint is
# unreachable, malformed, or missing its contract fields.
#
# Usage: scripts/check_expo.sh [build-dir]   (default: build/release)
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir=${1:-build/release}
tool="$build_dir/tools/rps_tool"
if [ ! -x "$tool" ]; then
  echo "check_expo.sh: $tool not built" >&2
  exit 2
fi

work=$(mktemp -d)
serve_pid=""
cleanup() {
  [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true
  [ -n "$serve_pid" ] && wait "$serve_pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

port_file="$work/port"
"$tool" serve --shape 32x32 --port 0 --port-file "$port_file" \
  --duration-s 8 --readers 2 --slow-query-us 1 \
  --event-log "$work/events.jsonl" --dir "$work/durable" \
  > "$work/serve.log" 2>&1 &
serve_pid=$!

# Wait for the port file (the server writes it after binding).
for _ in $(seq 1 50); do
  [ -s "$port_file" ] && break
  if ! kill -0 "$serve_pid" 2>/dev/null; then
    echo "check_expo.sh: serve exited early:" >&2
    cat "$work/serve.log" >&2
    exit 1
  fi
  sleep 0.1
done
[ -s "$port_file" ] || { echo "check_expo.sh: no port file" >&2; exit 1; }
port=$(cat "$port_file")
base="http://127.0.0.1:$port"

fetch() {
  python3 -c '
import sys, urllib.request
with urllib.request.urlopen(sys.argv[1], timeout=10) as r:
    sys.stdout.write(r.read().decode("utf-8"))
' "$1"
}

require() {  # require <haystack-file> <needle> <what>
  grep -q -- "$2" "$1" || {
    echo "check_expo.sh: FAIL: $3 ($2 not found)" >&2
    exit 1
  }
}

fetch "$base/healthz" > "$work/healthz"
require "$work/healthz" '"status":"ok"' "/healthz status"
require "$work/healthz" '"engine"' "/healthz engine source"
require "$work/healthz" '"durable"' "/healthz durable source"

fetch "$base/varz" > "$work/varz"
require "$work/varz" '"pid":' "/varz pid"
require "$work/varz" '"event_log"' "/varz event_log block"

fetch "$base/metrics" > "$work/metrics"
require "$work/metrics" '^# TYPE rps_' "/metrics Prometheus text"

fetch "$base/debug/slow" > "$work/slow"
require "$work/slow" '"spans":\[' "/debug/slow span trees"

# The live JSON exposition, validated by the schema checker itself
# (structure only: the serve workload does not touch every subsystem
# the offline rps_tool metrics workload covers).
python3 scripts/check_metrics_schema.py --structure-only \
  --url "$base/metrics.json"

# The wide-event sink received well-formed JSONL.
wait "$serve_pid"
serve_pid=""
[ -s "$work/events.jsonl" ] || {
  echo "check_expo.sh: FAIL: event log is empty" >&2
  exit 1
}
head -1 "$work/events.jsonl" | grep -q '"trace_id":' || {
  echo "check_expo.sh: FAIL: event log line missing trace_id" >&2
  exit 1
}

echo "check_expo.sh: OK (port $port, $(wc -l < "$work/events.jsonl") wide events)"
