#!/bin/sh
# Regenerates every paper artifact: builds, runs the full test suite
# (including the exact Figure 1-15 reproductions) and every benchmark
# binary. Outputs land in test_output.txt / bench_output.txt at the
# repository root. See DESIGN.md Section 3 for the experiment index
# and EXPERIMENTS.md for recorded paper-vs-measured outcomes.
set -e
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/bench_*; do "$b"; done 2>&1 | tee bench_output.txt
