#!/bin/sh
# Regenerates every paper artifact: builds, runs the full test suite
# (including the exact Figure 1-15 reproductions) and every benchmark
# binary. Outputs land in test_output.txt / bench_output.txt at the
# repository root. See DESIGN.md Section 3 for the experiment index
# and EXPERIMENTS.md for recorded paper-vs-measured outcomes.
set -e
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
# The google-benchmark binaries also dump the metric registry as
# JSON (BENCH_<name>.json at the repo root); the other table
# binaries only print text.
for b in build/bench/bench_*; do
  name=$(basename "$b")
  case "$name" in
    bench_query_scaling|bench_update_scaling|bench_kernels|bench_durable)
      "$b" --metrics-json "BENCH_${name#bench_}.json" ;;
    *)
      "$b" ;;
  esac
done 2>&1 | tee bench_output.txt
# Shard-scaling experiment (docs/PERFORMANCE.md): mixed reader/writer
# workload over the serving engines, locked facade baseline plus
# sharded 1/2/4/8.
build/tools/rps_tool shardbench --out BENCH_shard_scaling.json \
  2>&1 | tee -a bench_output.txt
# Durable-ingest scaling (docs/PERFORMANCE.md): group-commit vs
# per-record WAL at the full fsync barrier across writer counts.
# --batch 2 pairs records per enqueue (the batched-ingest fast path);
# the batch size is recorded in the JSON.
build/tools/rps_tool durablebench --batch 2 \
  --out BENCH_durable_scaling.json 2>&1 | tee -a bench_output.txt
